#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cityhunter::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kDistribution: return "distribution";
    case MetricKind::kTimer: return "timer";
  }
  return "?";
}

MetricsSnapshot MetricsSnapshot::deterministic() const {
  MetricsSnapshot out;
  out.points.reserve(points.size());
  for (const MetricPoint& p : points) {
    if (p.kind != MetricKind::kTimer) out.points.push_back(p);
  }
  return out;
}

const MetricPoint* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricPoint& p : points) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string MetricsSnapshot::str() const {
  std::ostringstream os;
  for (const MetricPoint& p : points) {
    os << p.name << ' ' << to_string(p.kind) << " count=" << p.count
       << " value=" << p.value;
    if (p.kind != MetricKind::kCounter) {
      os << " min=" << p.min << " max=" << p.max;
    }
    os << '\n';
  }
  return os.str();
}

MetricsRegistry::Id MetricsRegistry::intern(std::string_view name,
                                            MetricKind kind) {
  for (Id i = 0; i < points_.size(); ++i) {
    if (points_[i].name == name) {
      if (points_[i].kind != kind) {
        throw std::invalid_argument("MetricsRegistry: '" + std::string(name) +
                                    "' already registered with another kind");
      }
      return i;
    }
  }
  Point p;
  p.name = std::string(name);
  p.kind = kind;
  points_.push_back(std::move(p));
  return points_.size() - 1;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  return intern(name, MetricKind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::distribution(std::string_view name,
                                                  double bucket_width) {
  const Id id = intern(name, MetricKind::kDistribution);
  if (!points_[id].hist) points_[id].hist.emplace(bucket_width);
  return id;
}

MetricsRegistry::Id MetricsRegistry::timer(std::string_view name) {
  return intern(name, MetricKind::kTimer);
}

void MetricsRegistry::observe(Id id, double value) {
  points_[id].hist->add(value);
}

void MetricsRegistry::record_seconds(Id id, double seconds) {
  points_[id].intervals.add(seconds);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.points.reserve(points_.size());
  for (const Point& p : points_) {
    MetricPoint m;
    m.name = p.name;
    m.kind = p.kind;
    switch (p.kind) {
      case MetricKind::kCounter:
        m.count = p.total;
        m.value = static_cast<double>(p.total);
        break;
      case MetricKind::kGauge:
        m.count = p.sets;
        m.value = p.last;
        m.min = p.min;
        m.max = p.max;
        break;
      case MetricKind::kDistribution:
        m.count = p.hist->count();
        m.value = p.hist->mean();
        m.min = p.hist->min();
        m.max = p.hist->max();
        break;
      case MetricKind::kTimer:
        m.count = p.intervals.count();
        m.value = p.intervals.mean() * static_cast<double>(m.count);
        m.min = p.intervals.min();
        m.max = p.intervals.max();
        break;
    }
    out.points.push_back(std::move(m));
  }
  std::sort(out.points.begin(), out.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace cityhunter::obs
