// Per-shard delivery observation buffer for the sharded city (sim/shard).
//
// One DeliveryLog belongs to one shard, appended single-threaded from that
// shard's frame sinks while its event loop runs. Cross-shard aggregation
// follows the PR 4 trace-exporter rule — merge by the shard's input-order
// index, never by harvest/thread order — so the merged stream is identical
// at any worker count.
//
// Identity across *shard counts* needs one more step: the same city split
// into 1 vs 4 shards delivers the same multiset of frames, but interleaved
// differently between the per-shard streams. The canonical form is
// therefore the sorted multiset, and the streaming digest below is
// order-independent by construction (a mod-2^64 SUM of per-record hashes —
// sum, not xor, so duplicate records accumulate multiplicity instead of
// cancelling). Benches compare digests without materialising millions of
// records; tests materialise and sort.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <vector>

namespace cityhunter::obs {

/// One delivered frame, keyed entirely by world-level (shard-invariant)
/// identifiers: global radio ids, sim time, and the exact RSSI bit pattern.
struct DeliveryRecord {
  std::int64_t time_us = 0;
  std::uint64_t tx_id = 0;        // global (world) id of the transmitter
  std::uint64_t rx_id = 0;        // global (world) id of the receiver
  std::uint64_t rssi_bits = 0;    // bit_cast of the delivered RSSI double
  std::uint8_t channel = 0;

  auto operator<=>(const DeliveryRecord&) const = default;
};

/// FNV-1a over the record's fields (field-by-field, no struct padding).
std::uint64_t record_hash(const DeliveryRecord& r);

class DeliveryLog {
 public:
  /// `keep_records` retains every record for test-side sorting/merging;
  /// benches leave it off and rely on the streaming digest + count.
  explicit DeliveryLog(bool keep_records = false) : keep_(keep_records) {}

  void record(std::int64_t time_us, std::uint64_t tx_id, std::uint64_t rx_id,
              double rssi_dbm, std::uint8_t channel);

  std::uint64_t count() const { return count_; }
  /// Order-independent multiset digest of everything recorded so far.
  std::uint64_t digest() const { return digest_; }
  const std::vector<DeliveryRecord>& records() const { return records_; }

 private:
  std::vector<DeliveryRecord> records_;
  std::uint64_t count_ = 0;
  std::uint64_t digest_ = 0;
  bool keep_ = false;
};

/// Concatenate retained records by shard input order (log index), the same
/// stable rule the trace exporter uses for per-run buffers.
std::vector<DeliveryRecord> merge_by_input_order(
    std::span<const DeliveryLog* const> logs);

/// Combined digest over per-shard logs. Commutative and associative, so the
/// value is independent of both the shard partition and the merge order.
std::uint64_t combined_digest(std::span<const DeliveryLog* const> logs);

}  // namespace cityhunter::obs
