// Per-run observability bundle: one TraceBuffer + one MetricsRegistry,
// allocated only when enabled. Components receive raw pointers that are null
// when observability is off, so the disabled cost everywhere is one branch.
#pragma once

#include <cstddef>
#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cityhunter::obs {

struct Config {
  bool enabled = false;
  /// Ring capacity per run. When the trace outgrows it, the oldest records
  /// are overwritten (TraceBuffer::dropped() counts them).
  std::size_t trace_capacity = 1 << 14;

  bool operator==(const Config&) const = default;
};

class Probe {
 public:
  Probe() = default;
  explicit Probe(const Config& cfg) {
    if (!cfg.enabled) return;
    trace_ = std::make_unique<TraceBuffer>(cfg.trace_capacity);
    metrics_ = std::make_unique<MetricsRegistry>();
  }

  bool enabled() const { return metrics_ != nullptr; }

  /// Null when disabled — hand this to components as their branch-on-null
  /// sink.
  TraceBuffer* trace() { return trace_.get(); }
  const TraceBuffer* trace() const { return trace_.get(); }

  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }

 private:
  std::unique_ptr<TraceBuffer> trace_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace cityhunter::obs
