// Structured tracing: a fixed-capacity, zero-alloc ring buffer of typed
// trace records, with JSONL and Chrome/Perfetto `trace_event` sinks.
//
// Determinism contract: a record carries (sim time, deterministic per-buffer
// sequence, category, event, two payload words) — never a wall clock, a
// pointer value or a thread id. One buffer belongs to one run; merged output
// is keyed by the run's input-order index (the Chrome `pid`), so the same
// campaign traced at any worker-thread count serializes byte-identically.
//
// Hot-path contract: record() is a bounds-free array store into storage
// allocated once at construction — no branches that allocate, no locks.
// Components hold a `TraceBuffer*` that is null when observability is off;
// the disabled cost is one pointer test.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/sim_time.h"

namespace cityhunter::obs {

using support::SimTime;

/// Subsystem that emitted a record. Doubles as the Chrome `tid`, so each
/// layer gets its own track in the Perfetto timeline.
enum class Category : std::uint8_t {
  kQueue = 0,
  kMedium = 1,
  kFault = 2,
  kAttacker = 3,
  kSim = 4,
};

const char* to_string(Category c);

/// What happened. Payload words `a`/`b` per event:
///   kTransmit        a = tx radio id,   b = wire bytes
///   kDeliver         a = rx radio id,   b = tx radio id
///   kRetry           a = tx radio id,   b = attempt number (1-based)
///   kDropErasure     a = rx radio id,   b = tx radio id (receiver-side PER/
///                                           collision draw erased the frame)
///   kDropCollision   a = tx radio id,   b = retries spent (retry budget
///                                           exhausted on a collision)
///   kDropCrcReject   a = tx radio id,   b = wire bytes (bit damage kept —
///                                           every receiver's FCS rejects)
///   kScanWindowFill  a = SSIDs chosen,  b = response budget
///   kPbResize        a = new PB size,   b = new FB size
///   kGhostPromotion  a = 1 popularity-ghost hit / 2 freshness-ghost hit
///   kShardFanout     a = tx radio id,   b = chunks the fanout split into
enum class Event : std::uint8_t {
  kTransmit = 0,
  kDeliver = 1,
  kRetry = 2,
  kDropErasure = 3,
  kDropCollision = 4,
  kDropCrcReject = 5,
  kScanWindowFill = 6,
  kPbResize = 7,
  kGhostPromotion = 8,
  kShardFanout = 9,
};

const char* to_string(Event e);

struct TraceRecord {
  std::int64_t time_us = 0;  // sim time, never wall clock
  std::uint64_t seq = 0;     // per-buffer, assigned in record() order
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  Category category = Category::kSim;
  Event event = Event::kTransmit;

  bool operator==(const TraceRecord&) const = default;
};

/// Fixed-capacity ring of trace records. When full, the oldest record is
/// overwritten and dropped() grows — recent history wins, and the hot path
/// never pays for the overflow.
class TraceBuffer {
 public:
  /// Storage is allocated here, once; capacity must be positive.
  explicit TraceBuffer(std::size_t capacity);

  /// Append one record. Zero heap allocations, noexcept by construction.
  void record(SimTime t, Category c, Event e, std::uint64_t a = 0,
              std::uint64_t b = 0) noexcept {
    TraceRecord& r = ring_[static_cast<std::size_t>(total_ % capacity_)];
    r.time_us = t.us();
    r.seq = total_;
    r.a = a;
    r.b = b;
    r.category = c;
    r.event = e;
    ++total_;
  }

  std::size_t capacity() const { return capacity_; }
  /// Records currently retained (== min(total_recorded, capacity)).
  std::size_t size() const {
    return total_ < capacity_ ? static_cast<std::size_t>(total_) : capacity_;
  }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ < capacity_ ? 0 : total_ - capacity_;
  }

  /// Retained records, oldest first. Allocates the result vector — cold
  /// path, called once per run when the buffer is harvested.
  std::vector<TraceRecord> chronological() const;

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t capacity_;  // u64 so total_ % capacity_ avoids a narrowing
  std::uint64_t total_ = 0;
};

/// Append `raw` to `out` as the body of a JSON string literal: quotes and
/// backslashes escaped, control bytes as \u00XX, well-formed UTF-8 copied
/// verbatim, and every invalid UTF-8 byte replaced by U+FFFD — a hostile
/// SSID (the attacker reads them off the air) can never break the sink's
/// JSON.
void json_escape(std::string_view raw, std::string& out);
std::string json_escape(std::string_view raw);

/// One traced run in a merged export: `pid` is the run's input-order index
/// (stable across thread counts), `name` labels the Chrome process.
struct TraceStream {
  int pid = 0;
  std::string name;
  std::span<const TraceRecord> records;
};

/// One JSON object per line per record:
///   {"ts":..,"seq":..,"cat":"medium","ev":"transmit","a":..,"b":..,"pid":0}
void write_jsonl(std::ostream& os, std::span<const TraceStream> streams);

/// Chrome/Perfetto `trace_event` JSON: instant events on one track per
/// category, one process per run, loadable in chrome://tracing or
/// ui.perfetto.dev. Timestamps are sim-time microseconds.
void write_chrome_trace(std::ostream& os, std::span<const TraceStream> streams);

}  // namespace cityhunter::obs
