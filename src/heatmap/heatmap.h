// Photo-derived city heat map (paper §IV-B, Fig 4, Table IV).
//
// The attacker cannot observe true people density; it *estimates* it by
// binning geotagged photos into a grid. An SSID's heat value is the sum of
// grid heat at each of its (WiGLE-known) AP positions. The top-200 SSIDs by
// heat get rank weights 200..1 (the ratio method of Barron & Barrett that
// the paper cites), and so do the 100 nearest SSIDs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "medium/geometry.h"
#include "world/photos.h"
#include "world/wigle.h"

namespace cityhunter::heatmap {

using medium::Position;

class HeatMap {
 public:
  /// Bin `photos` into cells of `cell_m` metres over a `width_m` x
  /// `height_m` grid.
  HeatMap(const world::PhotoSet& photos, double width_m, double height_m,
          double cell_m = 250.0);

  /// Heat (photo count) of the cell containing `p`; 0 outside the grid.
  double at(Position p) const;

  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  double cell_size() const { return cell_m_; }
  double cell(std::size_t col, std::size_t row) const {
    return grid_[row * cols_ + col];
  }
  double max_cell() const;

  /// Heat value of an SSID: sum of heat over all its free AP positions in
  /// the WiGLE snapshot.
  double ssid_heat(const world::WigleDb& wigle, const std::string& ssid) const;

  /// CSV rendering (row per line) for Fig 4.
  std::string to_csv() const;
  /// Coarse ASCII rendering for terminals.
  std::string to_ascii(int max_cols = 72) const;

 private:
  double width_m_, height_m_, cell_m_;
  std::size_t cols_, rows_;
  std::vector<double> grid_;
};

/// One scored SSID.
struct ScoredSsid {
  std::string ssid;
  double score = 0.0;  // heat value or AP count, depending on ranking
};

/// Top-`k` free SSIDs by heat value.
std::vector<ScoredSsid> top_by_heat(const world::WigleDb& wigle,
                                    const HeatMap& heat, std::size_t k);

/// Top-`k` free SSIDs by WiGLE AP count (the naive ranking of Table IV).
std::vector<ScoredSsid> top_by_ap_count(const world::WigleDb& wigle,
                                        std::size_t k);

/// Rank weights after Barron & Barrett: the item ranked first among `n`
/// receives weight n, the last weight 1.
std::vector<double> rank_weights(std::size_t n);

}  // namespace cityhunter::heatmap
