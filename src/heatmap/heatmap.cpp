#include "heatmap/heatmap.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cityhunter::heatmap {

HeatMap::HeatMap(const world::PhotoSet& photos, double width_m,
                 double height_m, double cell_m)
    : width_m_(width_m), height_m_(height_m), cell_m_(cell_m) {
  if (width_m <= 0 || height_m <= 0 || cell_m <= 0) {
    throw std::invalid_argument("HeatMap: non-positive dimensions");
  }
  cols_ = static_cast<std::size_t>(std::ceil(width_m / cell_m));
  rows_ = static_cast<std::size_t>(std::ceil(height_m / cell_m));
  grid_.assign(cols_ * rows_, 0.0);
  for (const auto& p : photos.positions()) {
    if (p.x < 0 || p.y < 0 || p.x >= width_m_ || p.y >= height_m_) continue;
    const auto c = static_cast<std::size_t>(p.x / cell_m_);
    const auto r = static_cast<std::size_t>(p.y / cell_m_);
    grid_[r * cols_ + c] += 1.0;
  }
}

double HeatMap::at(Position p) const {
  if (p.x < 0 || p.y < 0 || p.x >= width_m_ || p.y >= height_m_) return 0.0;
  const auto c = static_cast<std::size_t>(p.x / cell_m_);
  const auto r = static_cast<std::size_t>(p.y / cell_m_);
  return grid_[r * cols_ + c];
}

double HeatMap::max_cell() const {
  return grid_.empty() ? 0.0 : *std::max_element(grid_.begin(), grid_.end());
}

double HeatMap::ssid_heat(const world::WigleDb& wigle,
                          const std::string& ssid) const {
  double sum = 0.0;
  for (const auto& pos : wigle.free_ap_positions(ssid)) {
    sum += at(pos);
  }
  return sum;
}

std::string HeatMap::to_csv() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (c ? "," : "") << grid_[r * cols_ + c];
    }
    os << '\n';
  }
  return os.str();
}

std::string HeatMap::to_ascii(int max_cols) const {
  static constexpr char kShades[] = " .:-=+*#%@";
  const std::size_t step =
      std::max<std::size_t>(1, cols_ / static_cast<std::size_t>(max_cols));
  const double peak = max_cell();
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; r += step) {
    for (std::size_t c = 0; c < cols_; c += step) {
      // Aggregate the step x step block.
      double v = 0.0;
      for (std::size_t dr = 0; dr < step && r + dr < rows_; ++dr) {
        for (std::size_t dc = 0; dc < step && c + dc < cols_; ++dc) {
          v = std::max(v, grid_[(r + dr) * cols_ + (c + dc)]);
        }
      }
      const int shade =
          peak > 0 ? static_cast<int>(v / peak * 9.0 + 0.5) : 0;
      os << kShades[std::clamp(shade, 0, 9)];
    }
    os << '\n';
  }
  return os.str();
}

namespace {
std::vector<ScoredSsid> top_k(std::vector<ScoredSsid> scored, std::size_t k) {
  std::sort(scored.begin(), scored.end(),
            [](const ScoredSsid& a, const ScoredSsid& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.ssid < b.ssid;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}
}  // namespace

std::vector<ScoredSsid> top_by_heat(const world::WigleDb& wigle,
                                    const HeatMap& heat, std::size_t k) {
  std::vector<ScoredSsid> scored;
  for (const auto& ssid : wigle.free_ssids()) {
    scored.push_back({ssid, heat.ssid_heat(wigle, ssid)});
  }
  return top_k(std::move(scored), k);
}

std::vector<ScoredSsid> top_by_ap_count(const world::WigleDb& wigle,
                                        std::size_t k) {
  std::vector<ScoredSsid> scored;
  for (const auto& [ssid, count] : wigle.free_ap_counts()) {
    scored.push_back({ssid, static_cast<double>(count)});
  }
  return top_k(std::move(scored), k);
}

std::vector<double> rank_weights(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<double>(n - i);
  }
  return w;
}

}  // namespace cityhunter::heatmap
