#include "dot11/ie.h"

#include <cmath>
#include <stdexcept>

namespace cityhunter::dot11 {

void IeList::add(ElementId id, std::vector<std::uint8_t> body) {
  if (body.size() > 255) {
    throw std::length_error("InformationElement body exceeds 255 octets");
  }
  elems_.push_back({id, std::move(body)});
}

void IeList::add_ssid(std::string_view ssid) {
  if (ssid.size() > 32) {
    throw std::length_error("SSID exceeds 32 octets");
  }
  std::vector<std::uint8_t> body(ssid.begin(), ssid.end());
  add(ElementId::kSsid, std::move(body));
}

void IeList::add_supported_rates(std::span<const double> rates_mbps) {
  static constexpr double kDefault[] = {1, 2, 5.5, 11, 6, 9, 12, 18};
  std::span<const double> rates =
      rates_mbps.empty() ? std::span<const double>(kDefault) : rates_mbps;
  std::vector<std::uint8_t> body;
  body.reserve(rates.size());
  for (const double r : rates) {
    // Units of 500 kb/s, basic-rate flag (MSB) set.
    const auto units = static_cast<std::uint8_t>(std::lround(r * 2.0));
    body.push_back(static_cast<std::uint8_t>(units | 0x80));
  }
  add(ElementId::kSupportedRates, std::move(body));
}

void IeList::add_ds_param(std::uint8_t channel) {
  add(ElementId::kDsParameterSet, {channel});
}

void IeList::add_rsn_wpa2_psk() {
  // RSN version 1, group cipher CCMP, one pairwise cipher CCMP, one AKM PSK,
  // RSN capabilities 0. OUI 00-0F-AC is the IEEE 802.11 cipher-suite OUI.
  const std::vector<std::uint8_t> body = {
      0x01, 0x00,                    // version 1
      0x00, 0x0F, 0xAC, 0x04,        // group cipher: CCMP-128
      0x01, 0x00,                    // pairwise count 1
      0x00, 0x0F, 0xAC, 0x04,        // pairwise: CCMP-128
      0x01, 0x00,                    // AKM count 1
      0x00, 0x0F, 0xAC, 0x02,        // AKM: PSK
      0x00, 0x00,                    // RSN capabilities
  };
  add(ElementId::kRsn, body);
}

const InformationElement* IeList::find(ElementId id) const {
  for (const auto& e : elems_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::optional<std::string> IeList::ssid() const {
  const auto* e = find(ElementId::kSsid);
  if (!e) return std::nullopt;
  return std::string(e->body.begin(), e->body.end());
}

std::optional<std::uint8_t> IeList::channel() const {
  const auto* e = find(ElementId::kDsParameterSet);
  if (!e || e->body.size() != 1) return std::nullopt;
  return e->body[0];
}

bool IeList::has_rsn() const { return find(ElementId::kRsn) != nullptr; }

std::size_t IeList::wire_size() const {
  std::size_t n = 0;
  for (const auto& e : elems_) n += 2 + e.body.size();
  return n;
}

void IeList::serialize_to(std::vector<std::uint8_t>& out) const {
  for (const auto& e : elems_) {
    out.push_back(static_cast<std::uint8_t>(e.id));
    out.push_back(static_cast<std::uint8_t>(e.body.size()));
    out.insert(out.end(), e.body.begin(), e.body.end());
  }
}

std::optional<IeList> IeList::parse(std::span<const std::uint8_t> data) {
  IeList list;
  std::size_t i = 0;
  while (i < data.size()) {
    if (i + 2 > data.size()) return std::nullopt;  // truncated header
    const auto id = static_cast<ElementId>(data[i]);
    const std::size_t len = data[i + 1];
    i += 2;
    if (i + len > data.size()) return std::nullopt;  // truncated body
    list.elems_.push_back(
        {id, std::vector<std::uint8_t>(data.begin() + static_cast<long>(i),
                                       data.begin() + static_cast<long>(i + len))});
    i += len;
  }
  return list;
}

}  // namespace cityhunter::dot11
