#include "dot11/ie.h"

#include <cmath>
#include <stdexcept>

namespace cityhunter::dot11 {

std::size_t IeList::append_header(ElementId id, std::size_t len) {
  if (len > 255) {
    throw std::length_error("InformationElement body exceeds 255 octets");
  }
  entries_.push_back({id, static_cast<std::uint32_t>(buf_.size() + 2),
                      static_cast<std::uint8_t>(len)});
  buf_.push_back(static_cast<std::uint8_t>(id));
  buf_.push_back(static_cast<std::uint8_t>(len));
  return buf_.size();
}

void IeList::add(ElementId id, std::span<const std::uint8_t> body) {
  append_header(id, body.size());
  buf_.insert(buf_.end(), body.begin(), body.end());
}

void IeList::add_ssid(std::string_view ssid) {
  if (ssid.size() > 32) {
    throw std::length_error("SSID exceeds 32 octets");
  }
  append_header(ElementId::kSsid, ssid.size());
  buf_.insert(buf_.end(), ssid.begin(), ssid.end());
}

void IeList::add_supported_rates(std::span<const double> rates_mbps) {
  static constexpr double kDefault[] = {1, 2, 5.5, 11, 6, 9, 12, 18};
  std::span<const double> rates =
      rates_mbps.empty() ? std::span<const double>(kDefault) : rates_mbps;
  append_header(ElementId::kSupportedRates, rates.size());
  for (const double r : rates) {
    // Units of 500 kb/s, basic-rate flag (MSB) set.
    const auto units = static_cast<std::uint8_t>(std::lround(r * 2.0));
    buf_.push_back(static_cast<std::uint8_t>(units | 0x80));
  }
}

void IeList::add_ds_param(std::uint8_t channel) {
  add(ElementId::kDsParameterSet, {channel});
}

void IeList::add_rsn_wpa2_psk() {
  // RSN version 1, group cipher CCMP, one pairwise cipher CCMP, one AKM PSK,
  // RSN capabilities 0. OUI 00-0F-AC is the IEEE 802.11 cipher-suite OUI.
  static constexpr std::uint8_t kBody[] = {
      0x01, 0x00,                    // version 1
      0x00, 0x0F, 0xAC, 0x04,        // group cipher: CCMP-128
      0x01, 0x00,                    // pairwise count 1
      0x00, 0x0F, 0xAC, 0x04,        // pairwise: CCMP-128
      0x01, 0x00,                    // AKM count 1
      0x00, 0x0F, 0xAC, 0x02,        // AKM: PSK
      0x00, 0x00,                    // RSN capabilities
  };
  add(ElementId::kRsn, std::span<const std::uint8_t>(kBody));
}

IeView IeList::view(std::size_t i) const {
  const Entry& e = entries_[i];
  return {e.id, std::span<const std::uint8_t>(buf_.data() + e.offset, e.len)};
}

std::optional<IeView> IeList::find(ElementId id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) {
      return IeView{
          e.id, std::span<const std::uint8_t>(buf_.data() + e.offset, e.len)};
    }
  }
  return std::nullopt;
}

std::optional<std::string> IeList::ssid() const {
  const auto v = ssid_view();
  if (!v) return std::nullopt;
  return std::string(*v);
}

std::optional<std::string_view> IeList::ssid_view() const {
  const auto e = find(ElementId::kSsid);
  if (!e) return std::nullopt;
  return std::string_view(reinterpret_cast<const char*>(e->body.data()),
                          e->body.size());
}

std::optional<std::uint8_t> IeList::channel() const {
  const auto e = find(ElementId::kDsParameterSet);
  if (!e || e->body.size() != 1) return std::nullopt;
  return e->body[0];
}

bool IeList::has_rsn() const { return find(ElementId::kRsn).has_value(); }

bool IeList::assign_wire(std::span<const std::uint8_t> data) {
  buf_.clear();
  entries_.clear();
  std::size_t i = 0;
  while (i < data.size()) {
    if (i + 2 > data.size()) return false;  // truncated header
    const auto id = static_cast<ElementId>(data[i]);
    const std::uint8_t len = data[i + 1];
    if (i + 2 + len > data.size()) return false;  // truncated body
    entries_.push_back(
        {id, static_cast<std::uint32_t>(i + 2), len});
    i += 2 + len;
  }
  buf_.assign(data.begin(), data.end());
  return true;
}

std::optional<IeList> IeList::parse(std::span<const std::uint8_t> data) {
  IeList list;
  if (!list.assign_wire(data)) return std::nullopt;
  return list;
}

}  // namespace cityhunter::dot11
