// Wire-format serialization for 802.11 management frames.
//
// Layout follows IEEE Std 802.11-2016 §9.3.3: little-endian fixed fields,
// the 3-address MAC header, then the frame body and a CRC-32 FCS. A frame
// serialized here is byte-for-byte what a monitor-mode injector would emit
// (modulo radiotap, which is a capture pseudo-header, not part of the frame).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dot11/frame.h"

namespace cityhunter::dot11 {

/// Serialize `frame` including the trailing 4-octet FCS.
std::vector<std::uint8_t> serialize(const Frame& frame);

/// Serialized length in octets (including FCS) without materialising the
/// buffer — used by the medium to compute airtime.
std::size_t wire_size(const Frame& frame);

/// Parse a full frame. Returns nullopt on: truncation, bad FCS, non-mgmt
/// type, or an unsupported subtype.
std::optional<Frame> parse(std::span<const std::uint8_t> data);

}  // namespace cityhunter::dot11
