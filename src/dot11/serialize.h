// Wire-format serialization for 802.11 management frames.
//
// Layout follows IEEE Std 802.11-2016 §9.3.3: little-endian fixed fields,
// the 3-address MAC header, then the frame body and a CRC-32 FCS. A frame
// serialized here is byte-for-byte what a monitor-mode injector would emit
// (modulo radiotap, which is a capture pseudo-header, not part of the frame).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dot11/frame.h"

namespace cityhunter::dot11 {

/// Serialize `frame` including the trailing 4-octet FCS.
std::vector<std::uint8_t> serialize(const Frame& frame);

/// Hot-path variant: serialize into a caller-owned scratch buffer (cleared
/// first, capacity reused across calls). Returns the wire size, so airtime
/// can be derived from the one serialization instead of a second tree walk
/// through wire_size(). Output bytes are identical to serialize().
std::size_t serialize_into(const Frame& frame, std::vector<std::uint8_t>& out);

/// Serialized length in octets (including FCS) without materialising the
/// buffer.
std::size_t wire_size(const Frame& frame);

/// Parse a full frame. Returns nullopt on: truncation, bad FCS, non-mgmt
/// type, or an unsupported subtype.
std::optional<Frame> parse(std::span<const std::uint8_t> data);

/// Hot-path variant: decode into a reusable frame slot. When `slot` already
/// holds the same body subtype, its IE backing storage is reused — no heap
/// allocation at steady state. Returns false on the same rejects as parse()
/// (slot contents are unspecified then). Accepted frames compare equal to
/// what parse() would have produced.
bool parse_into(std::span<const std::uint8_t> data, Frame& slot);

}  // namespace cityhunter::dot11
