// Timing constants of the 802.11 scanning exchange.
//
// These drive the core observation of the paper (§III-A): a scanning client
// waits MinChannelTime (~10 ms) for the first probe response and at most
// another MaxChannelTime window afterwards; with ~0.25 ms of airtime per
// probe response, roughly 40 responses fit in one scan — so an attacker that
// dumps its whole database (MANA) wastes everything past the first 40.
#pragma once

#include "support/sim_time.h"

namespace cityhunter::dot11 {

using support::SimTime;

/// Time the client waits for the *first* probe response after probing.
inline constexpr SimTime kMinChannelTime = SimTime::milliseconds(10);

/// Additional listening window once at least one response arrived.
inline constexpr SimTime kMaxChannelTime = SimTime::milliseconds(10);

/// Airtime of one probe response at the basic rate (paper cites ~0.25 ms,
/// after Castignani et al.).
inline constexpr SimTime kProbeResponseAirtime = SimTime::microseconds(250);

/// Maximum probe responses a client can take in per scan: the whole paper's
/// "40 SSIDs" budget. (kMinChannelTime + kMaxChannelTime) / airtime = 80 in
/// the ideal case; the paper's observed effective budget is 40 because the
/// responses share the channel with all other traffic (roughly half the
/// airtime is available). We model the effective value.
inline constexpr int kProbeResponseBudget = 40;

/// Short interframe space / slot overheads folded into per-frame scheduling.
inline constexpr SimTime kSifs = SimTime::microseconds(10);

/// Airtime of a frame of `bytes` octets at `rate_mbps`, plus PHY preamble.
constexpr SimTime airtime(std::size_t bytes, double rate_mbps) {
  // 192 us long preamble + payload at rate.
  const double us = 192.0 + static_cast<double>(bytes) * 8.0 / rate_mbps;
  return SimTime::microseconds(static_cast<long long>(us));
}

/// Default management-frame rate (1 Mb/s would give ~3 ms frames; real APs
/// answer probes at a basic rate like 6-11 Mb/s. 11 Mb/s + preamble lands at
/// ~0.25 ms for a typical probe response, matching kProbeResponseAirtime).
inline constexpr double kMgmtRateMbps = 11.0;

}  // namespace cityhunter::dot11
