#include "dot11/serialize.h"

#include "dot11/crc32.h"

namespace cityhunter::dot11 {

namespace {

constexpr std::size_t kMacHeaderSize = 2 + 2 + 6 + 6 + 6 + 2;
constexpr std::size_t kFcsSize = 4;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void put_mac(std::vector<std::uint8_t>& out, const MacAddress& m) {
  out.insert(out.end(), m.octets().begin(), m.octets().end());
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    }
    pos_ += 8;
    return v;
  }

  MacAddress mac() {
    if (!need(6)) return {};
    std::array<std::uint8_t, 6> o{};
    for (int i = 0; i < 6; ++i) o[static_cast<std::size_t>(i)] = data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 6;
    return MacAddress(o);
  }

  std::span<const std::uint8_t> rest() {
    auto s = data_.subspan(pos_);
    pos_ = data_.size();
    return s;
  }

 private:
  bool need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::size_t body_wire_size(const FrameBody& body) {
  struct Visitor {
    std::size_t operator()(const Beacon& b) const {
      return 8 + 2 + 2 + b.ies.wire_size();
    }
    std::size_t operator()(const ProbeRequest& b) const {
      return b.ies.wire_size();
    }
    std::size_t operator()(const ProbeResponse& b) const {
      return 8 + 2 + 2 + b.ies.wire_size();
    }
    std::size_t operator()(const Authentication&) const { return 6; }
    std::size_t operator()(const AssociationRequest& b) const {
      return 2 + 2 + b.ies.wire_size();
    }
    std::size_t operator()(const AssociationResponse& b) const {
      return 2 + 2 + 2 + b.ies.wire_size();
    }
    std::size_t operator()(const Deauthentication&) const { return 2; }
    std::size_t operator()(const Disassociation&) const { return 2; }
  };
  return std::visit(Visitor{}, body);
}

void serialize_body(std::vector<std::uint8_t>& out, const FrameBody& body) {
  struct Visitor {
    std::vector<std::uint8_t>& out;
    void operator()(const Beacon& b) const {
      put_u64(out, b.timestamp_us);
      put_u16(out, b.beacon_interval_tu);
      put_u16(out, b.capability.bits);
      b.ies.serialize_to(out);
    }
    void operator()(const ProbeRequest& b) const { b.ies.serialize_to(out); }
    void operator()(const ProbeResponse& b) const {
      put_u64(out, b.timestamp_us);
      put_u16(out, b.beacon_interval_tu);
      put_u16(out, b.capability.bits);
      b.ies.serialize_to(out);
    }
    void operator()(const Authentication& b) const {
      put_u16(out, static_cast<std::uint16_t>(b.algorithm));
      put_u16(out, b.sequence);
      put_u16(out, static_cast<std::uint16_t>(b.status));
    }
    void operator()(const AssociationRequest& b) const {
      put_u16(out, b.capability.bits);
      put_u16(out, b.listen_interval);
      b.ies.serialize_to(out);
    }
    void operator()(const AssociationResponse& b) const {
      put_u16(out, b.capability.bits);
      put_u16(out, static_cast<std::uint16_t>(b.status));
      put_u16(out, b.association_id);
      b.ies.serialize_to(out);
    }
    void operator()(const Deauthentication& b) const {
      put_u16(out, static_cast<std::uint16_t>(b.reason));
    }
    void operator()(const Disassociation& b) const {
      put_u16(out, static_cast<std::uint16_t>(b.reason));
    }
  };
  std::visit(Visitor{out}, body);
}

/// Re-point `body` at alternative T, reusing the existing object (and its IE
/// backing storage) when the variant already holds one.
template <typename T>
T& body_slot(FrameBody& body) {
  if (auto* p = std::get_if<T>(&body)) return *p;
  return body.emplace<T>();
}

bool parse_body_into(MgmtSubtype subtype, Reader& r, FrameBody& body) {
  switch (subtype) {
    case MgmtSubtype::kBeacon: {
      auto& b = body_slot<Beacon>(body);
      b.timestamp_us = r.u64();
      b.beacon_interval_tu = r.u16();
      b.capability.bits = r.u16();
      if (!r.ok()) return false;
      return b.ies.assign_wire(r.rest());
    }
    case MgmtSubtype::kProbeRequest: {
      auto& b = body_slot<ProbeRequest>(body);
      return b.ies.assign_wire(r.rest());
    }
    case MgmtSubtype::kProbeResponse: {
      auto& b = body_slot<ProbeResponse>(body);
      b.timestamp_us = r.u64();
      b.beacon_interval_tu = r.u16();
      b.capability.bits = r.u16();
      if (!r.ok()) return false;
      return b.ies.assign_wire(r.rest());
    }
    case MgmtSubtype::kAuthentication: {
      auto& b = body_slot<Authentication>(body);
      b.algorithm = static_cast<AuthAlgorithm>(r.u16());
      b.sequence = r.u16();
      b.status = static_cast<StatusCode>(r.u16());
      return r.ok();
    }
    case MgmtSubtype::kAssociationRequest: {
      auto& b = body_slot<AssociationRequest>(body);
      b.capability.bits = r.u16();
      b.listen_interval = r.u16();
      if (!r.ok()) return false;
      return b.ies.assign_wire(r.rest());
    }
    case MgmtSubtype::kAssociationResponse: {
      auto& b = body_slot<AssociationResponse>(body);
      b.capability.bits = r.u16();
      b.status = static_cast<StatusCode>(r.u16());
      b.association_id = r.u16();
      if (!r.ok()) return false;
      return b.ies.assign_wire(r.rest());
    }
    case MgmtSubtype::kDeauthentication: {
      auto& b = body_slot<Deauthentication>(body);
      b.reason = static_cast<ReasonCode>(r.u16());
      return r.ok();
    }
    case MgmtSubtype::kDisassociation: {
      auto& b = body_slot<Disassociation>(body);
      b.reason = static_cast<ReasonCode>(r.u16());
      return r.ok();
    }
  }
  return false;
}

}  // namespace

std::size_t serialize_into(const Frame& frame, std::vector<std::uint8_t>& out) {
  out.clear();
  // Frame control: version 0 (bits 0-1), type 0 = mgmt (bits 2-3),
  // subtype (bits 4-7). Flags octet zero.
  const std::uint16_t fc = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(frame.subtype()) << 4);
  put_u16(out, fc);
  put_u16(out, frame.header.duration);
  put_mac(out, frame.header.addr1);
  put_mac(out, frame.header.addr2);
  put_mac(out, frame.header.addr3);
  // Sequence control: fragment number 0 in low nibble.
  put_u16(out, static_cast<std::uint16_t>(frame.header.sequence << 4));
  serialize_body(out, frame.body);
  put_u32(out, crc32(out));
  return out.size();
}

std::vector<std::uint8_t> serialize(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size(frame));
  serialize_into(frame, out);
  return out;
}

std::size_t wire_size(const Frame& frame) {
  return kMacHeaderSize + body_wire_size(frame.body) + kFcsSize;
}

bool parse_into(std::span<const std::uint8_t> data, Frame& slot) {
  if (data.size() < kMacHeaderSize + kFcsSize) return false;
  // Verify FCS first, as hardware does.
  const std::size_t payload_len = data.size() - kFcsSize;
  const std::uint32_t want = crc32(data.first(payload_len));
  std::uint32_t got = 0;
  for (int i = 3; i >= 0; --i) {
    got = (got << 8) | data[payload_len + static_cast<std::size_t>(i)];
  }
  if (want != got) return false;

  Reader r(data.first(payload_len));
  const std::uint16_t fc = r.u16();
  const auto version = fc & 0x3;
  const auto type = (fc >> 2) & 0x3;
  if (version != 0 || type != 0) return false;  // not mgmt
  const auto subtype = static_cast<MgmtSubtype>((fc >> 4) & 0xf);

  slot.header.duration = r.u16();
  slot.header.addr1 = r.mac();
  slot.header.addr2 = r.mac();
  slot.header.addr3 = r.mac();
  slot.header.sequence = static_cast<std::uint16_t>(r.u16() >> 4);
  if (!r.ok()) return false;

  return parse_body_into(subtype, r, slot.body);
}

std::optional<Frame> parse(std::span<const std::uint8_t> data) {
  std::optional<Frame> f(std::in_place);
  if (!parse_into(data, *f)) return std::nullopt;
  return f;
}

}  // namespace cityhunter::dot11
