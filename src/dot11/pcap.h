// pcap capture export.
//
// Writes simulated traffic in the classic libpcap format with
// LINKTYPE_IEEE802_11 (105) — the same file a monitor-mode capture of the
// real attack would produce, loadable in Wireshark/tshark. Useful for
// eyeballing attack traffic and for feeding external IDS tooling with
// synthetic evil-twin captures.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dot11/frame.h"
#include "support/sim_time.h"

namespace cityhunter::dot11 {

/// Streaming pcap writer. Little-endian, microsecond timestamps, link type
/// 802.11 (no radiotap header).
class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the global header. Throws
  /// std::runtime_error when the file cannot be opened.
  explicit PcapWriter(const std::string& path);

  /// Append one frame with the given capture timestamp.
  void write(std::span<const std::uint8_t> frame_bytes, support::SimTime ts);
  void write(const Frame& frame, support::SimTime ts);

  std::size_t frames_written() const { return frames_; }
  void flush() { out_.flush(); }

  static constexpr std::uint32_t kMagic = 0xa1b2c3d4;
  static constexpr std::uint32_t kLinkTypeIeee80211 = 105;

 private:
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);

  std::ofstream out_;
  std::size_t frames_ = 0;
};

/// A parsed pcap record (for tests and offline analysis).
struct PcapRecord {
  support::SimTime timestamp;
  std::vector<std::uint8_t> bytes;
};

/// Read back a pcap file written by PcapWriter. Returns nullopt on a bad
/// magic/linktype or any truncated record.
std::optional<std::vector<PcapRecord>> read_pcap(const std::string& path);

}  // namespace cityhunter::dot11
