// 802.11 management frames.
//
// The simulator exchanges real, serializable management frames: the attacker
// code path is the same one that would feed a monitor-mode NIC — only the
// transport underneath (medium::Medium instead of a driver) differs.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "dot11/ie.h"
#include "dot11/mac_address.h"

namespace cityhunter::dot11 {

/// Management frame subtypes (frame control type = 00).
enum class MgmtSubtype : std::uint8_t {
  kAssociationRequest = 0,
  kAssociationResponse = 1,
  kProbeRequest = 4,
  kProbeResponse = 5,
  kBeacon = 8,
  kDisassociation = 10,
  kAuthentication = 11,
  kDeauthentication = 12,
};

/// Capability Information field bits (subset).
struct CapabilityInfo {
  static constexpr std::uint16_t kEss = 0x0001;
  static constexpr std::uint16_t kIbss = 0x0002;
  static constexpr std::uint16_t kPrivacy = 0x0010;
  static constexpr std::uint16_t kShortPreamble = 0x0020;

  std::uint16_t bits = kEss;

  bool ess() const { return bits & kEss; }
  bool privacy() const { return bits & kPrivacy; }
  void set_privacy(bool on) {
    if (on) {
      bits |= kPrivacy;
    } else {
      bits = static_cast<std::uint16_t>(bits & ~kPrivacy);
    }
  }
  bool operator==(const CapabilityInfo&) const = default;
};

/// Authentication algorithm numbers.
enum class AuthAlgorithm : std::uint16_t {
  kOpenSystem = 0,
  kSharedKey = 1,
  kSae = 3,
};

/// Status codes (subset of Table 9-46).
enum class StatusCode : std::uint16_t {
  kSuccess = 0,
  kUnspecifiedFailure = 1,
  kUnsupportedCapabilities = 10,
  kAuthAlgorithmNotSupported = 13,
};

/// Reason codes for deauthentication/disassociation (subset).
enum class ReasonCode : std::uint16_t {
  kUnspecified = 1,
  kPreviousAuthNoLongerValid = 2,
  kDeauthLeaving = 3,
  kInactivity = 4,
};

/// --- Frame bodies ---

struct Beacon {
  std::uint64_t timestamp_us = 0;   // TSF timer value
  std::uint16_t beacon_interval_tu = 100;  // time units of 1024 us
  CapabilityInfo capability;
  IeList ies;
  bool operator==(const Beacon&) const = default;
};

struct ProbeRequest {
  IeList ies;  // SSID element present; empty SSID body = wildcard/broadcast
  bool operator==(const ProbeRequest&) const = default;

  /// True when the SSID element is absent or zero-length: a broadcast probe
  /// that does not disclose any PNL entry.
  bool is_broadcast() const {
    const auto s = ies.ssid();
    return !s.has_value() || s->empty();
  }
};

struct ProbeResponse {
  std::uint64_t timestamp_us = 0;
  std::uint16_t beacon_interval_tu = 100;
  CapabilityInfo capability;
  IeList ies;
  bool operator==(const ProbeResponse&) const = default;
};

struct Authentication {
  AuthAlgorithm algorithm = AuthAlgorithm::kOpenSystem;
  std::uint16_t sequence = 1;  // 1 = request, 2 = response for open system
  StatusCode status = StatusCode::kSuccess;
  bool operator==(const Authentication&) const = default;
};

struct AssociationRequest {
  CapabilityInfo capability;
  std::uint16_t listen_interval = 10;
  IeList ies;  // SSID + rates
  bool operator==(const AssociationRequest&) const = default;
};

struct AssociationResponse {
  CapabilityInfo capability;
  StatusCode status = StatusCode::kSuccess;
  std::uint16_t association_id = 1;
  IeList ies;
  bool operator==(const AssociationResponse&) const = default;
};

struct Deauthentication {
  ReasonCode reason = ReasonCode::kUnspecified;
  bool operator==(const Deauthentication&) const = default;
};

struct Disassociation {
  ReasonCode reason = ReasonCode::kUnspecified;
  bool operator==(const Disassociation&) const = default;
};

using FrameBody =
    std::variant<Beacon, ProbeRequest, ProbeResponse, Authentication,
                 AssociationRequest, AssociationResponse, Deauthentication,
                 Disassociation>;

/// MAC header fields shared by all management frames (3-address format).
struct MgmtHeader {
  MacAddress addr1;  // receiver / destination
  MacAddress addr2;  // transmitter / source
  MacAddress addr3;  // BSSID
  std::uint16_t sequence = 0;  // sequence number (0..4095); fragment = 0
  std::uint16_t duration = 0;
  bool operator==(const MgmtHeader&) const = default;
};

/// A complete management frame.
struct Frame {
  MgmtHeader header;
  FrameBody body;

  MgmtSubtype subtype() const;

  /// Convenience body accessors; nullptr when the body is a different type.
  template <typename T>
  const T* as() const {
    return std::get_if<T>(&body);
  }
  template <typename T>
  T* as() {
    return std::get_if<T>(&body);
  }

  bool operator==(const Frame&) const = default;
};

/// Human-readable subtype name for logs.
std::string subtype_name(MgmtSubtype s);

/// --- Convenience frame builders used across the simulator ---

/// A broadcast probe request (wildcard SSID) from `client`.
Frame make_broadcast_probe_request(const MacAddress& client,
                                   std::uint16_t seq = 0);

/// A direct probe request asking for a specific SSID.
Frame make_direct_probe_request(const MacAddress& client,
                                std::string_view ssid, std::uint16_t seq = 0);

/// A probe response advertising `ssid` from AP `bssid` to `client`.
/// `open` selects whether the privacy bit and RSN element are absent.
Frame make_probe_response(const MacAddress& bssid, const MacAddress& client,
                          std::string_view ssid, std::uint8_t channel,
                          bool open, std::uint16_t seq = 0);

/// A beacon for `ssid`.
Frame make_beacon(const MacAddress& bssid, std::string_view ssid,
                  std::uint8_t channel, bool open, std::uint64_t timestamp_us,
                  std::uint16_t seq = 0);

/// Open-system authentication request (seq 1) / response (seq 2).
Frame make_auth_request(const MacAddress& client, const MacAddress& bssid,
                        std::uint16_t seq = 0);
Frame make_auth_response(const MacAddress& bssid, const MacAddress& client,
                         StatusCode status, std::uint16_t seq = 0);

/// Association request/response for `ssid`.
Frame make_assoc_request(const MacAddress& client, const MacAddress& bssid,
                         std::string_view ssid, std::uint16_t seq = 0);
Frame make_assoc_response(const MacAddress& bssid, const MacAddress& client,
                          StatusCode status, std::uint16_t aid,
                          std::uint16_t seq = 0);

/// Deauthentication from `src` (spoofable — the attack in Sec V-B forges the
/// AP's address here) to `dst`.
Frame make_deauth(const MacAddress& src, const MacAddress& dst,
                  const MacAddress& bssid, ReasonCode reason,
                  std::uint16_t seq = 0);

/// --- Hot-path builder variants ---
///
/// These rebuild the frame in `out`, reusing its IE backing storage when the
/// body subtype matches the previous use of the slot. The result is equal to
/// the corresponding make_*() return value; the caller keeps ownership of
/// `out` across transmits so per-frame heap traffic drops to zero at steady
/// state (e.g. the attacker's burst of probe responses).

void make_broadcast_probe_request_into(Frame& out, const MacAddress& client,
                                       std::uint16_t seq = 0);

void make_direct_probe_request_into(Frame& out, const MacAddress& client,
                                    std::string_view ssid,
                                    std::uint16_t seq = 0);

void make_probe_response_into(Frame& out, const MacAddress& bssid,
                              const MacAddress& client, std::string_view ssid,
                              std::uint8_t channel, bool open,
                              std::uint16_t seq = 0);

void make_beacon_into(Frame& out, const MacAddress& bssid,
                      std::string_view ssid, std::uint8_t channel, bool open,
                      std::uint64_t timestamp_us, std::uint16_t seq = 0);

}  // namespace cityhunter::dot11
