// CRC-32 (IEEE 802.3 polynomial) used for the 802.11 frame check sequence.
#pragma once

#include <cstdint>
#include <span>

namespace cityhunter::dot11 {

/// CRC-32 over `data` with the reflected IEEE polynomial 0xEDB88320, initial
/// value 0xFFFFFFFF and final xor 0xFFFFFFFF — the FCS every 802.11 frame
/// carries in its last 4 octets.
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace cityhunter::dot11
