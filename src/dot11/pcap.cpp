#include "dot11/pcap.h"

#include <stdexcept>

#include "dot11/serialize.h"

namespace cityhunter::dot11 {

PcapWriter::PcapWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("PcapWriter: cannot open " + path);
  }
  put_u32(kMagic);
  put_u16(2);  // version major
  put_u16(4);  // version minor
  put_u32(0);  // thiszone
  put_u32(0);  // sigfigs
  put_u32(65535);  // snaplen
  put_u32(kLinkTypeIeee80211);
}

void PcapWriter::put_u16(std::uint16_t v) {
  const char b[2] = {static_cast<char>(v & 0xff),
                     static_cast<char>((v >> 8) & 0xff)};
  out_.write(b, 2);
}

void PcapWriter::put_u32(std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out_.write(b, 4);
}

void PcapWriter::write(std::span<const std::uint8_t> frame_bytes,
                       support::SimTime ts) {
  const auto us_total = ts.us();
  put_u32(static_cast<std::uint32_t>(us_total / 1000000));
  put_u32(static_cast<std::uint32_t>(us_total % 1000000));
  put_u32(static_cast<std::uint32_t>(frame_bytes.size()));  // incl_len
  put_u32(static_cast<std::uint32_t>(frame_bytes.size()));  // orig_len
  out_.write(reinterpret_cast<const char*>(frame_bytes.data()),
             static_cast<std::streamsize>(frame_bytes.size()));
  ++frames_;
}

void PcapWriter::write(const Frame& frame, support::SimTime ts) {
  write(serialize(frame), ts);
}

std::optional<std::vector<PcapRecord>> read_pcap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  auto get_u32 = [&](std::uint32_t& v) -> bool {
    unsigned char b[4];
    if (!in.read(reinterpret_cast<char*>(b), 4)) return false;
    v = static_cast<std::uint32_t>(b[0]) |
        (static_cast<std::uint32_t>(b[1]) << 8) |
        (static_cast<std::uint32_t>(b[2]) << 16) |
        (static_cast<std::uint32_t>(b[3]) << 24);
    return true;
  };

  std::uint32_t magic = 0;
  if (!get_u32(magic) || magic != PcapWriter::kMagic) return std::nullopt;
  // Skip version (4), thiszone (4), sigfigs (4), snaplen (4).
  in.seekg(16, std::ios::cur);
  std::uint32_t linktype = 0;
  if (!get_u32(linktype) || linktype != PcapWriter::kLinkTypeIeee80211) {
    return std::nullopt;
  }

  std::vector<PcapRecord> records;
  while (true) {
    std::uint32_t sec = 0, usec = 0, incl = 0, orig = 0;
    if (!get_u32(sec)) break;  // clean EOF
    if (!get_u32(usec) || !get_u32(incl) || !get_u32(orig)) {
      return std::nullopt;  // truncated header
    }
    PcapRecord rec;
    rec.timestamp = support::SimTime::microseconds(
        static_cast<std::int64_t>(sec) * 1000000 + usec);
    rec.bytes.resize(incl);
    if (!in.read(reinterpret_cast<char*>(rec.bytes.data()), incl)) {
      return std::nullopt;  // truncated body
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace cityhunter::dot11
