#include "dot11/mac_address.h"

#include <cctype>
#include <cstdio>

#include "support/rng.h"

namespace cityhunter::dot11 {

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (int i = 0; i < 6; ++i) {
    const int hi = hex_value(text[static_cast<std::size_t>(i) * 3]);
    const int lo = hex_value(text[static_cast<std::size_t>(i) * 3 + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    if (i < 5 && text[static_cast<std::size_t>(i) * 3 + 2] != ':') {
      return std::nullopt;
    }
    octets[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(hi * 16 + lo);
  }
  return MacAddress(octets);
}

MacAddress MacAddress::random_local(support::Rng& rng) {
  std::array<std::uint8_t, 6> o{};
  for (auto& b : o) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  o[0] = static_cast<std::uint8_t>((o[0] | 0x02) & ~0x01);  // local, unicast
  return MacAddress(o);
}

MacAddress MacAddress::from_oui(std::array<std::uint8_t, 3> oui,
                                support::Rng& rng) {
  std::array<std::uint8_t, 6> o{oui[0], oui[1], oui[2], 0, 0, 0};
  for (int i = 3; i < 6; ++i) {
    o[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  o[0] = static_cast<std::uint8_t>(o[0] & ~0x01);  // unicast
  return MacAddress(o);
}

std::string MacAddress::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

}  // namespace cityhunter::dot11
