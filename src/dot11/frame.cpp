#include "dot11/frame.h"

namespace cityhunter::dot11 {

MgmtSubtype Frame::subtype() const {
  struct Visitor {
    MgmtSubtype operator()(const Beacon&) const { return MgmtSubtype::kBeacon; }
    MgmtSubtype operator()(const ProbeRequest&) const {
      return MgmtSubtype::kProbeRequest;
    }
    MgmtSubtype operator()(const ProbeResponse&) const {
      return MgmtSubtype::kProbeResponse;
    }
    MgmtSubtype operator()(const Authentication&) const {
      return MgmtSubtype::kAuthentication;
    }
    MgmtSubtype operator()(const AssociationRequest&) const {
      return MgmtSubtype::kAssociationRequest;
    }
    MgmtSubtype operator()(const AssociationResponse&) const {
      return MgmtSubtype::kAssociationResponse;
    }
    MgmtSubtype operator()(const Deauthentication&) const {
      return MgmtSubtype::kDeauthentication;
    }
    MgmtSubtype operator()(const Disassociation&) const {
      return MgmtSubtype::kDisassociation;
    }
  };
  return std::visit(Visitor{}, body);
}

std::string subtype_name(MgmtSubtype s) {
  switch (s) {
    case MgmtSubtype::kAssociationRequest: return "assoc-req";
    case MgmtSubtype::kAssociationResponse: return "assoc-resp";
    case MgmtSubtype::kProbeRequest: return "probe-req";
    case MgmtSubtype::kProbeResponse: return "probe-resp";
    case MgmtSubtype::kBeacon: return "beacon";
    case MgmtSubtype::kDisassociation: return "disassoc";
    case MgmtSubtype::kAuthentication: return "auth";
    case MgmtSubtype::kDeauthentication: return "deauth";
  }
  return "unknown";
}

Frame make_broadcast_probe_request(const MacAddress& client,
                                   std::uint16_t seq) {
  ProbeRequest body;
  body.ies.add_ssid("");  // wildcard SSID
  body.ies.add_supported_rates();
  return Frame{{MacAddress::broadcast(), client, MacAddress::broadcast(), seq},
               std::move(body)};
}

Frame make_direct_probe_request(const MacAddress& client,
                                std::string_view ssid, std::uint16_t seq) {
  ProbeRequest body;
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
  return Frame{{MacAddress::broadcast(), client, MacAddress::broadcast(), seq},
               std::move(body)};
}

Frame make_probe_response(const MacAddress& bssid, const MacAddress& client,
                          std::string_view ssid, std::uint8_t channel,
                          bool open, std::uint16_t seq) {
  ProbeResponse body;
  body.capability.set_privacy(!open);
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
  body.ies.add_ds_param(channel);
  if (!open) body.ies.add_rsn_wpa2_psk();
  return Frame{{client, bssid, bssid, seq}, std::move(body)};
}

Frame make_beacon(const MacAddress& bssid, std::string_view ssid,
                  std::uint8_t channel, bool open, std::uint64_t timestamp_us,
                  std::uint16_t seq) {
  Beacon body;
  body.timestamp_us = timestamp_us;
  body.capability.set_privacy(!open);
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
  body.ies.add_ds_param(channel);
  if (!open) body.ies.add_rsn_wpa2_psk();
  return Frame{{MacAddress::broadcast(), bssid, bssid, seq}, std::move(body)};
}

Frame make_auth_request(const MacAddress& client, const MacAddress& bssid,
                        std::uint16_t seq) {
  Authentication body;
  body.sequence = 1;
  return Frame{{bssid, client, bssid, seq}, body};
}

Frame make_auth_response(const MacAddress& bssid, const MacAddress& client,
                         StatusCode status, std::uint16_t seq) {
  Authentication body;
  body.sequence = 2;
  body.status = status;
  return Frame{{client, bssid, bssid, seq}, body};
}

Frame make_assoc_request(const MacAddress& client, const MacAddress& bssid,
                         std::string_view ssid, std::uint16_t seq) {
  AssociationRequest body;
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
  return Frame{{bssid, client, bssid, seq}, std::move(body)};
}

Frame make_assoc_response(const MacAddress& bssid, const MacAddress& client,
                          StatusCode status, std::uint16_t aid,
                          std::uint16_t seq) {
  AssociationResponse body;
  body.status = status;
  body.association_id = aid;
  body.ies.add_supported_rates();
  return Frame{{client, bssid, bssid, seq}, std::move(body)};
}

Frame make_deauth(const MacAddress& src, const MacAddress& dst,
                  const MacAddress& bssid, ReasonCode reason,
                  std::uint16_t seq) {
  Deauthentication body;
  body.reason = reason;
  return Frame{{dst, src, bssid, seq}, body};
}

namespace {

/// Re-point the body variant at alternative T without discarding the existing
/// object's IE storage when the alternative already matches.
template <typename T>
T& reuse_body(FrameBody& body) {
  if (auto* p = std::get_if<T>(&body)) return *p;
  return body.emplace<T>();
}

}  // namespace

void make_broadcast_probe_request_into(Frame& out, const MacAddress& client,
                                       std::uint16_t seq) {
  out.header = {MacAddress::broadcast(), client, MacAddress::broadcast(), seq};
  auto& body = reuse_body<ProbeRequest>(out.body);
  body.ies.clear();
  body.ies.add_ssid("");  // wildcard SSID
  body.ies.add_supported_rates();
}

void make_direct_probe_request_into(Frame& out, const MacAddress& client,
                                    std::string_view ssid, std::uint16_t seq) {
  out.header = {MacAddress::broadcast(), client, MacAddress::broadcast(), seq};
  auto& body = reuse_body<ProbeRequest>(out.body);
  body.ies.clear();
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
}

void make_probe_response_into(Frame& out, const MacAddress& bssid,
                              const MacAddress& client, std::string_view ssid,
                              std::uint8_t channel, bool open,
                              std::uint16_t seq) {
  out.header = {client, bssid, bssid, seq};
  auto& body = reuse_body<ProbeResponse>(out.body);
  body.timestamp_us = 0;
  body.beacon_interval_tu = 100;
  body.capability = CapabilityInfo{};
  body.capability.set_privacy(!open);
  body.ies.clear();
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
  body.ies.add_ds_param(channel);
  if (!open) body.ies.add_rsn_wpa2_psk();
}

void make_beacon_into(Frame& out, const MacAddress& bssid,
                      std::string_view ssid, std::uint8_t channel, bool open,
                      std::uint64_t timestamp_us, std::uint16_t seq) {
  out.header = {MacAddress::broadcast(), bssid, bssid, seq};
  auto& body = reuse_body<Beacon>(out.body);
  body.timestamp_us = timestamp_us;
  body.beacon_interval_tu = 100;
  body.capability = CapabilityInfo{};
  body.capability.set_privacy(!open);
  body.ies.clear();
  body.ies.add_ssid(ssid);
  body.ies.add_supported_rates();
  body.ies.add_ds_param(channel);
  if (!open) body.ies.add_rsn_wpa2_psk();
}

}  // namespace cityhunter::dot11
