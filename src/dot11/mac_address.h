// IEEE 802 MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace cityhunter::support {
class Rng;
}

namespace cityhunter::dot11 {

/// A 48-bit IEEE 802 MAC address with value semantics.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Parse "aa:bb:cc:dd:ee:ff" (case-insensitive). Returns nullopt on any
  /// syntax error.
  static std::optional<MacAddress> parse(std::string_view text);

  /// The all-ff broadcast address.
  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  /// A locally administered, unicast random address (what MAC-randomising
  /// phones emit while scanning).
  static MacAddress random_local(support::Rng& rng);

  /// A globally unique unicast address with the given 3-byte OUI.
  static MacAddress from_oui(std::array<std::uint8_t, 3> oui,
                             support::Rng& rng);

  constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }

  constexpr bool is_broadcast() const {
    for (const auto o : octets_) {
      if (o != 0xff) return false;
    }
    return true;
  }
  constexpr bool is_multicast() const { return (octets_[0] & 0x01) != 0; }
  constexpr bool is_locally_administered() const {
    return (octets_[0] & 0x02) != 0;
  }

  std::string str() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace cityhunter::dot11

template <>
struct std::hash<cityhunter::dot11::MacAddress> {
  std::size_t operator()(const cityhunter::dot11::MacAddress& m) const {
    std::uint64_t v = 0;
    for (const auto o : m.octets()) v = (v << 8) | o;
    return std::hash<std::uint64_t>{}(v);
  }
};
