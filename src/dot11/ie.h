// 802.11 information elements (IEs): the TLV blobs carried in management
// frame bodies. We implement the elements the attack traffic actually uses
// (SSID, supported rates, DS parameter set, RSN) plus a generic container so
// unknown elements round-trip through parse/serialize untouched.
//
// Storage is a single contiguous backing buffer holding the exact wire TLV
// bytes (id, length, body per element) plus a flat (id, offset, len) entry
// table — one allocation per list instead of one per element body, and the
// buffer doubles as the serialized form: serialize_to() is a single append,
// wire_size() is the buffer length, and assign_wire() re-parses into the
// same storage without reallocating. This is what keeps the medium's
// transmit→parse hot path allocation-free at steady state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cityhunter::dot11 {

/// Element IDs from IEEE Std 802.11-2016 Table 9-77 (subset).
enum class ElementId : std::uint8_t {
  kSsid = 0,
  kSupportedRates = 1,
  kDsParameterSet = 3,
  kTim = 5,
  kCountry = 7,
  kErp = 42,
  kRsn = 48,
  kExtendedSupportedRates = 50,
  kHtCapabilities = 45,
  kVendorSpecific = 221,
};

/// Borrowed view of one element inside an IeList. Valid until the list is
/// mutated or destroyed.
struct IeView {
  ElementId id{};
  std::span<const std::uint8_t> body;
};

/// An ordered list of elements, as they appear in a frame body.
class IeList {
 public:
  IeList() = default;

  /// Append a raw element. Throws std::length_error if body > 255 octets.
  void add(ElementId id, std::span<const std::uint8_t> body);
  /// Overloads so brace-lists and rvalue vectors keep working at call sites.
  void add(ElementId id, const std::vector<std::uint8_t>& body) {
    add(id, std::span<const std::uint8_t>(body));
  }
  void add(ElementId id, std::initializer_list<std::uint8_t> body) {
    add(id, std::span<const std::uint8_t>(body.begin(), body.size()));
  }

  /// Drop every element but keep the backing storage for reuse.
  void clear() {
    buf_.clear();
    entries_.clear();
  }

  /// --- Typed constructors for the elements the simulator uses ---

  /// SSID element. Empty string = wildcard SSID (broadcast probe request).
  void add_ssid(std::string_view ssid);

  /// Supported rates in units of 500 kb/s, basic-rate bit set on each.
  /// Default set is 802.11b/g: 1, 2, 5.5, 11, 6, 9, 12, 18 Mb/s.
  void add_supported_rates(std::span<const double> rates_mbps = {});

  /// DS parameter set (current channel).
  void add_ds_param(std::uint8_t channel);

  /// Minimal RSN element advertising WPA2-PSK/CCMP. Presence of this element
  /// marks a protected network; open APs omit it.
  void add_rsn_wpa2_psk();

  /// --- Accessors ---

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Element at position `i` (insertion order), i < size().
  IeView view(std::size_t i) const;

  /// First element with the given id, if present.
  std::optional<IeView> find(ElementId id) const;

  /// SSID decoded from the SSID element, if present. The empty string means
  /// a wildcard SSID.
  std::optional<std::string> ssid() const;

  /// Non-allocating SSID accessor for hot paths: a view into the backing
  /// buffer, valid until the list is mutated.
  std::optional<std::string_view> ssid_view() const;

  std::optional<std::uint8_t> channel() const;

  /// True if an RSN element is present (network is protected).
  bool has_rsn() const;

  /// --- Wire format ---

  /// Serialized octet length.
  std::size_t wire_size() const { return buf_.size(); }

  /// The serialized TLV bytes (this IS the storage — no copy).
  std::span<const std::uint8_t> wire() const { return buf_; }

  void serialize_to(std::vector<std::uint8_t>& out) const {
    out.insert(out.end(), buf_.begin(), buf_.end());
  }

  /// Parse elements until the span is exhausted. Returns nullopt on a
  /// truncated element.
  static std::optional<IeList> parse(std::span<const std::uint8_t> data);

  /// In-place variant of parse(): validates and copies `data` into this
  /// list's backing storage, reusing capacity. Returns false (contents
  /// unspecified) on a truncated element.
  bool assign_wire(std::span<const std::uint8_t> data);

  /// Two lists are equal iff their wire forms are: the entry table is a
  /// pure index over buf_.
  bool operator==(const IeList& other) const { return buf_ == other.buf_; }

 private:
  struct Entry {
    ElementId id{};
    std::uint32_t offset = 0;  // of the body, within buf_
    std::uint8_t len = 0;
  };

  /// Append the TLV header for `len` body octets and return the write
  /// position for the body.
  std::size_t append_header(ElementId id, std::size_t len);

  std::vector<std::uint8_t> buf_;  // exact wire TLV bytes, in order
  std::vector<Entry> entries_;
};

}  // namespace cityhunter::dot11
