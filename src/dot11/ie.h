// 802.11 information elements (IEs): the TLV blobs carried in management
// frame bodies. We implement the elements the attack traffic actually uses
// (SSID, supported rates, DS parameter set, RSN) plus a generic container so
// unknown elements round-trip through parse/serialize untouched.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cityhunter::dot11 {

/// Element IDs from IEEE Std 802.11-2016 Table 9-77 (subset).
enum class ElementId : std::uint8_t {
  kSsid = 0,
  kSupportedRates = 1,
  kDsParameterSet = 3,
  kTim = 5,
  kCountry = 7,
  kErp = 42,
  kRsn = 48,
  kExtendedSupportedRates = 50,
  kHtCapabilities = 45,
  kVendorSpecific = 221,
};

/// One raw TLV element. Body length is limited to 255 by the wire format.
struct InformationElement {
  ElementId id{};
  std::vector<std::uint8_t> body;

  bool operator==(const InformationElement&) const = default;
};

/// An ordered list of elements, as they appear in a frame body.
class IeList {
 public:
  IeList() = default;

  /// Append a raw element. Throws std::length_error if body > 255 octets.
  void add(ElementId id, std::vector<std::uint8_t> body);

  /// --- Typed constructors for the elements the simulator uses ---

  /// SSID element. Empty string = wildcard SSID (broadcast probe request).
  void add_ssid(std::string_view ssid);

  /// Supported rates in units of 500 kb/s, basic-rate bit set on each.
  /// Default set is 802.11b/g: 1, 2, 5.5, 11, 6, 9, 12, 18 Mb/s.
  void add_supported_rates(std::span<const double> rates_mbps = {});

  /// DS parameter set (current channel).
  void add_ds_param(std::uint8_t channel);

  /// Minimal RSN element advertising WPA2-PSK/CCMP. Presence of this element
  /// marks a protected network; open APs omit it.
  void add_rsn_wpa2_psk();

  /// --- Accessors ---

  const std::vector<InformationElement>& elements() const { return elems_; }
  std::size_t size() const { return elems_.size(); }
  bool empty() const { return elems_.empty(); }

  const InformationElement* find(ElementId id) const;

  /// SSID decoded from the SSID element, if present. The empty string means
  /// a wildcard SSID.
  std::optional<std::string> ssid() const;

  std::optional<std::uint8_t> channel() const;

  /// True if an RSN element is present (network is protected).
  bool has_rsn() const;

  /// --- Wire format ---

  /// Serialized octet length.
  std::size_t wire_size() const;

  void serialize_to(std::vector<std::uint8_t>& out) const;

  /// Parse elements until the span is exhausted. Returns nullopt on a
  /// truncated element.
  static std::optional<IeList> parse(std::span<const std::uint8_t> data);

  bool operator==(const IeList&) const = default;

 private:
  std::vector<InformationElement> elems_;
};

}  // namespace cityhunter::dot11
