// Deploy City-Hunter in a subway passage during the morning rush
// (8am-9am, ~2500 commuters walking past) and print what it caught.
//
//   $ ./passage_rush_hour [seed]
#include <cstdio>
#include <cstdlib>

#include "sim/scenario.h"
#include "stats/report.h"
#include "support/histogram.h"

using namespace cityhunter;

int main(int argc, char** argv) {
  sim::ScenarioConfig scenario;
  scenario.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::World world(scenario);

  sim::RunConfig run;
  run.kind = sim::AttackerKind::kCityHunter;
  run.venue = mobility::subway_passage_venue();
  run.slot.expected_clients = run.venue.hourly_clients[0];  // 8am-9am
  run.slot.group_fraction = run.venue.hourly_group_fraction[0];
  run.duration = support::SimTime::hours(1);

  std::printf("Subway passage, 8am-9am rush, %0.f expected commuters...\n",
              run.slot.expected_clients);
  const auto out = sim::run_campaign(world, run);

  std::printf("%s\n", stats::summary_line(out.result).c_str());
  std::printf("buffers: PB=%d FB=%d | hits: WiGLE %zu / direct-db %zu | "
              "popularity %zu / freshness %zu\n",
              out.final_pb_size, out.final_fb_size,
              out.result.hits_from_wigle, out.result.hits_from_direct_db,
              out.result.hits_via_popularity, out.result.hits_via_freshness);

  // Fig 2(b)'s signature: how many SSIDs a walking commuter can be probed
  // with before leaving range (most get exactly one 40-SSID train).
  support::Histogram hist(40.0);
  for (const int n : out.result.ssids_sent_all_broadcast) {
    hist.add(static_cast<double>(n));
  }
  std::printf("SSIDs tried per broadcast client (bucket=40):\n%s",
              hist.ascii(40).c_str());
  return 0;
}
