// Library tour: build a custom attacker strategy on the public API.
//
// Implements a "nearby-only" attacker (seeds just the 100 closest WiGLE
// SSIDs, no heat map, no freshness) in ~30 lines by subclassing
// core::Attacker, then pits it against the full City-Hunter. This is the
// extension point downstream research would use to prototype new selection
// policies.
//
//   $ ./build_your_own_attacker [seed]
#include <cstdio>
#include <cstdlib>

#include "core/attacker.h"
#include "core/wigle_seed.h"
#include "sim/scenario.h"
#include "stats/report.h"

using namespace cityhunter;

namespace {

/// A minimal custom strategy: answer broadcast probes with the untried
/// nearby-seeded SSIDs, nearest-rank first.
class NearbyOnlyAttacker : public core::Attacker {
 public:
  using core::Attacker::Attacker;

 protected:
  void handle_direct_probe_ssid(const std::string& ssid,
                                support::SimTime now) override {
    database().add(ssid, 1.0, core::SsidSource::kDirectProbe, now);
  }

  std::vector<core::SsidChoice> select_ssids(const core::ClientRecord& client,
                                             int budget) override {
    std::vector<core::SsidChoice> out;
    for (const auto* rec : database().by_weight()) {
      if (out.size() >= static_cast<std::size_t>(budget)) break;
      if (client.sent.count(rec->ssid) != 0) continue;
      out.push_back(core::SsidChoice{rec->ssid,
                                     core::SelectionTag::kUntriedSweep,
                                     rec->source});
    }
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  sim::ScenarioConfig scenario;
  scenario.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::World world(scenario);

  // Hand-wire the custom attacker into its own simulation: this is what
  // sim::run_campaign does for the built-in strategies.
  medium::EventQueue events;
  medium::Medium medium(events, world.config().medium);

  core::Attacker::BaseConfig base;
  base.bssid = *dot11::MacAddress::parse("0a:7e:64:c1:7e:02");
  base.pos = {0, 0};
  NearbyOnlyAttacker attacker(medium, base);

  const auto venue = mobility::canteen_venue();
  const auto attack_pos = sim::venue_city_position(venue.name);
  core::WigleSeedConfig seed;
  seed.popular_count = 0;  // nearby-only: no city-wide set
  seed.nearby_count = 100;
  seed.ranking = core::PopularRanking::kApCount;
  core::seed_from_wigle(attacker.database(), world.wigle(), nullptr,
                        attack_pos, seed, events.now());
  attacker.start();
  std::printf("seeded %zu nearby SSIDs\n", attacker.database().size());

  // Local copy: the shared World's PNL model is immutable (see
  // sim/scenario.h); locale + person-id counters are per-crowd state.
  world::PnlModel pnl = world.pnl_model();
  world::Locale locale;
  locale.ranked_ssids = world.local_public_ssids(attack_pos, 500.0);
  locale.bias = 0.45;
  pnl.set_locale(std::move(locale));

  support::Rng rng(scenario.seed);
  mobility::VenuePopulation population(medium, pnl, venue,
                                       client::SmartphoneConfig{},
                                       rng.fork("population"));
  mobility::SlotParams slot;
  slot.expected_clients = 640;
  population.schedule_slot(support::SimTime::minutes(30), slot);
  events.run_until(support::SimTime::minutes(30));

  auto mine = stats::analyze(attacker, "nearby-only (custom)");
  std::printf("%s\n", stats::summary_line(mine).c_str());

  // Reference: the full City-Hunter on the same venue (fresh crowd).
  sim::RunConfig run;
  run.kind = sim::AttackerKind::kCityHunter;
  run.venue = venue;
  run.slot = slot;
  run.duration = support::SimTime::minutes(30);
  const auto full = sim::run_campaign(world, run);
  std::printf("%s\n", stats::summary_line(full.result).c_str());

  std::printf("\n%s\n",
              stats::comparison_table({mine, full.result}).c_str());
  return 0;
}
