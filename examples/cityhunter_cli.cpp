// Command-line front end: run any attacker in any venue with one command.
//
//   $ ./cityhunter_cli --venue canteen --attacker cityhunter
//         --clients 640 --minutes 30 --seed 42 [--deauth] [--carrier]
//
// Prints the campaign summary, the source breakdown and (for City-Hunter)
// the final buffer split.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/scenario.h"
#include "stats/report.h"

using namespace cityhunter;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --venue V      subway-passage | canteen | shopping-center |\n"
      "                 railway-station            (default canteen)\n"
      "  --attacker A   karma | mana | prelim | cityhunter (default cityhunter)\n"
      "  --clients N    expected clients for the slot (default venue 12pm rate)\n"
      "  --minutes M    slot duration in minutes     (default 60)\n"
      "  --seed S       world seed                   (default 42)\n"
      "  --run-seed S   per-run seed                 (default 1)\n"
      "  --deauth       enable the Sec V-B deauth scenario (50%% parked)\n"
      "  --carrier      seed carrier hotspot SSIDs (Sec V-B)\n"
      "  --randomize F  fraction of MAC-randomising devices (default 0)\n",
      argv0);
}

mobility::VenueConfig venue_by_name(const std::string& name) {
  if (name == "subway-passage") return mobility::subway_passage_venue();
  if (name == "canteen") return mobility::canteen_venue();
  if (name == "shopping-center") return mobility::shopping_center_venue();
  if (name == "railway-station") return mobility::railway_station_venue();
  std::fprintf(stderr, "unknown venue '%s'\n", name.c_str());
  std::exit(2);
}

sim::AttackerKind attacker_by_name(const std::string& name) {
  if (name == "karma") return sim::AttackerKind::kKarma;
  if (name == "mana") return sim::AttackerKind::kMana;
  if (name == "prelim") return sim::AttackerKind::kPrelim;
  if (name == "cityhunter") return sim::AttackerKind::kCityHunter;
  std::fprintf(stderr, "unknown attacker '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string venue_name = "canteen";
  std::string attacker_name = "cityhunter";
  double clients = -1;
  double minutes = 60;
  std::uint64_t seed = 42, run_seed = 1;
  bool deauth = false, carrier = false;
  double randomize = 0.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--venue") {
      venue_name = next();
    } else if (arg == "--attacker") {
      attacker_name = next();
    } else if (arg == "--clients") {
      clients = std::atof(next());
    } else if (arg == "--minutes") {
      minutes = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--run-seed") {
      run_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--deauth") {
      deauth = true;
    } else if (arg == "--carrier") {
      carrier = true;
    } else if (arg == "--randomize") {
      randomize = std::atof(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  sim::ScenarioConfig scenario;
  scenario.seed = seed;
  std::printf("building world (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  sim::World world(scenario);

  sim::RunConfig run;
  run.kind = attacker_by_name(attacker_name);
  run.venue = venue_by_name(venue_name);
  run.slot.expected_clients =
      clients > 0 ? clients : run.venue.hourly_clients[4] * minutes / 60.0;
  run.slot.mac_randomizing_fraction = randomize;
  run.duration = support::SimTime::minutes(minutes);
  run.run_seed = run_seed;
  run.seed_carrier_ssids = carrier;
  if (deauth) {
    sim::DeauthScenario d;
    d.pre_associated_fraction = 0.5;
    run.deauth = d;
  }

  std::printf("deploying %s in %s for %.0f min (~%.0f clients)...\n",
              sim::to_string(run.kind), run.venue.name.c_str(), minutes,
              run.slot.expected_clients);
  const auto out = sim::run_campaign(world, run);

  std::printf("\n%s\n", stats::summary_line(out.result).c_str());
  std::printf("%s\n", stats::comparison_table({out.result}).c_str());
  std::printf("database: %zu SSIDs (%zu learned on site)\n",
              out.db_final_size, out.db_from_direct);
  if (run.kind == sim::AttackerKind::kCityHunter) {
    std::printf("buffers : PB=%d FB=%d\n", out.final_pb_size,
                out.final_fb_size);
    std::printf("sources : WiGLE %zu, direct-probe DB %zu, carrier %zu | "
                "popularity %zu, freshness %zu\n",
                out.result.hits_from_wigle, out.result.hits_from_direct_db,
                out.result.hits_from_carrier_seed,
                out.result.hits_via_popularity,
                out.result.hits_via_freshness);
  }
  if (out.deauths_sent > 0) {
    std::printf("deauths : %llu forged\n",
                static_cast<unsigned long long>(out.deauths_sent));
  }
  return 0;
}
