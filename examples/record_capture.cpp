// Record a City-Hunter deployment to a pcap file: place a passive monitor
// next to the attacker and capture 5 minutes of canteen traffic — probe
// requests, the attacker's 40-SSID response trains, and the evil-twin
// handshakes — ready to open in Wireshark.
//
//   $ ./record_capture [output.pcap]
#include <cstdio>

#include "medium/pcap_recorder.h"
#include "sim/scenario.h"
#include "stats/report.h"

using namespace cityhunter;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "cityhunter_capture.pcap";

  sim::ScenarioConfig scenario;
  scenario.seed = 42;
  sim::World world(scenario);

  // Hand-wire a run so the monitor can sit on the same medium.
  medium::EventQueue events;
  medium::Medium medium(events, world.config().medium);
  support::Rng rng(scenario.seed);

  core::CityHunter::Config cfg;
  cfg.base.bssid = *dot11::MacAddress::parse("0a:7e:64:c1:7e:01");
  cfg.base.pos = {0, 0};
  core::CityHunter hunter(medium, cfg, rng.fork("sel"));
  const auto venue = mobility::canteen_venue();
  const auto attack_pos = sim::venue_city_position(venue.name);
  core::seed_from_wigle(hunter.database(), world.wigle(), &world.heat(),
                        attack_pos, core::WigleSeedConfig{}, events.now());
  hunter.start();

  medium::PcapRecorder recorder(path);
  auto monitor = medium.attach({3, 3}, 6, 0.0, &recorder);

  // Local copy: the shared World's PNL model is immutable (see
  // sim/scenario.h); locale + person-id counters are per-crowd state.
  world::PnlModel pnl = world.pnl_model();
  world::Locale locale;
  locale.ranked_ssids = world.local_public_ssids(attack_pos, 500.0);
  locale.bias = 0.45;
  pnl.set_locale(std::move(locale));

  mobility::VenuePopulation population(medium, pnl, venue,
                                       world.config().phone, rng.fork("pop"));
  mobility::SlotParams slot;
  slot.expected_clients = 120;  // 5-minute slice of a canteen crowd
  population.schedule_slot(support::SimTime::minutes(5), slot);

  std::printf("capturing 5 simulated minutes to %s ...\n", path.c_str());
  events.run_until(support::SimTime::minutes(5));
  recorder.writer().flush();
  medium.detach(monitor);

  const auto result = stats::analyze(hunter, "City-Hunter");
  std::printf("%s\n", stats::summary_line(result).c_str());
  std::printf("%zu frames written to %s (linktype 802.11; open in "
              "Wireshark)\n",
              recorder.writer().frames_written(), path.c_str());
  return 0;
}
