// Quickstart: build a synthetic city, deploy City-Hunter in the canteen for
// 30 minutes, and print the paper's headline metrics.
//
//   $ ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "sim/scenario.h"
#include "stats/report.h"

using namespace cityhunter;

int main(int argc, char** argv) {
  sim::ScenarioConfig scenario;
  scenario.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("Building synthetic city (seed %llu)...\n",
              static_cast<unsigned long long>(scenario.seed));
  sim::World world(scenario);
  std::printf("  %zu access points, %zu in WiGLE snapshot\n",
              world.aps().size(), world.wigle().size());

  sim::RunConfig run;
  run.kind = sim::AttackerKind::kCityHunter;
  run.venue = mobility::canteen_venue();
  run.slot.expected_clients = 640;
  run.duration = support::SimTime::minutes(30);

  std::printf("Deploying City-Hunter in the canteen for 30 minutes...\n");
  const auto out = sim::run_campaign(world, run);

  std::printf("\n%s\n", stats::summary_line(out.result).c_str());
  std::printf("database: %zu SSIDs (%zu learned from direct probes)\n",
              out.db_final_size, out.db_from_direct);
  std::printf("buffers : PB=%d FB=%d after adaptation\n", out.final_pb_size,
              out.final_fb_size);
  std::printf("breakdown of broadcast hits: WiGLE %zu, direct-probe DB %zu\n",
              out.result.hits_from_wigle, out.result.hits_from_direct_db);
  std::printf("                             popularity %zu, freshness %zu\n",
              out.result.hits_via_popularity, out.result.hits_via_freshness);
  std::printf("mean SSIDs tried per connected client: %.0f\n",
              out.result.mean_ssids_sent_connected());
  return 0;
}
