// The §V-B de-authentication extension: a cafe where half the guests are
// already on the venue's legitimate Wi-Fi and never probe. City-Hunter
// forges deauth frames in the venue AP's name to shake them loose, then
// competes with the real AP for the re-join.
//
//   $ ./deauth_cafe [seed]
#include <cstdio>
#include <cstdlib>

#include "sim/scenario.h"
#include "stats/report.h"
#include "support/table.h"

using namespace cityhunter;

int main(int argc, char** argv) {
  sim::ScenarioConfig scenario;
  scenario.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::World world(scenario);

  support::TextTable table(
      {"variant", "clients heard", "h", "h_b", "deauths sent"});
  for (const bool enable_deauth : {false, true}) {
    sim::RunConfig run;
    run.kind = sim::AttackerKind::kCityHunter;
    run.venue = mobility::canteen_venue();
    run.slot.expected_clients = 640;
    run.duration = support::SimTime::hours(1);
    run.run_seed = 1;
    sim::DeauthScenario d;
    d.pre_associated_fraction = 0.5;
    d.interval = support::SimTime::seconds(20);
    d.enable_deauth = enable_deauth;
    run.deauth = d;

    std::printf("running %s deauth...\n", enable_deauth ? "with" : "without");
    const auto out = sim::run_campaign(world, run);
    table.add_row({enable_deauth ? "deauth attack on" : "deauth attack off",
                   std::to_string(out.result.total_clients),
                   support::TextTable::pct(out.result.h()),
                   support::TextTable::pct(out.result.h_b()),
                   std::to_string(out.deauths_sent)});
  }
  std::printf("\ncanteen, 50%% of guests pre-associated to the venue AP:\n\n%s\n",
              table.str().c_str());
  std::printf("Deauthenticated guests re-scan; some land back on the real AP, "
              "some on the evil twin with the stronger signal.\n");
  return 0;
}
