// Evil-twin showdown: deploy all four attack generations against the same
// canteen crowd and print a single comparison table.
//
//   $ ./evil_twin_showdown [seed]
#include <cstdio>
#include <cstdlib>

#include "sim/scenario.h"
#include "stats/report.h"

using namespace cityhunter;

int main(int argc, char** argv) {
  sim::ScenarioConfig scenario;
  scenario.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  sim::World world(scenario);

  std::vector<stats::CampaignResult> rows;
  for (const auto kind :
       {sim::AttackerKind::kKarma, sim::AttackerKind::kMana,
        sim::AttackerKind::kPrelim, sim::AttackerKind::kCityHunter}) {
    sim::RunConfig run;
    run.kind = kind;
    run.venue = mobility::canteen_venue();
    run.slot.expected_clients = 640;
    run.duration = support::SimTime::minutes(30);
    run.run_seed = 1;  // identical crowd for every attacker
    std::printf("running %s...\n", sim::to_string(kind));
    rows.push_back(sim::run_campaign(world, run).result);
  }

  std::printf("\n30-minute canteen deployment, identical crowd:\n\n%s\n",
              stats::comparison_table(rows).c_str());
  std::printf("Two decades of evil-twin evolution in one table: KARMA only "
              "answers the few devices still disclosing their PNL; MANA "
              "replays what it heard; City-Hunter guesses what it never "
              "heard.\n");
  return 0;
}
