# Empty dependencies file for fig2_ssids_tried.
# This may be replaced when dependencies are built.
