file(REMOVE_RECURSE
  "CMakeFiles/fig2_ssids_tried.dir/fig2_ssids_tried.cpp.o"
  "CMakeFiles/fig2_ssids_tried.dir/fig2_ssids_tried.cpp.o.d"
  "fig2_ssids_tried"
  "fig2_ssids_tried.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ssids_tried.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
