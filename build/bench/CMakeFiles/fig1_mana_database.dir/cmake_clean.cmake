file(REMOVE_RECURSE
  "CMakeFiles/fig1_mana_database.dir/fig1_mana_database.cpp.o"
  "CMakeFiles/fig1_mana_database.dir/fig1_mana_database.cpp.o.d"
  "fig1_mana_database"
  "fig1_mana_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mana_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
