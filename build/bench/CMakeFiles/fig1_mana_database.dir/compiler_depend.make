# Empty compiler generated dependencies file for fig1_mana_database.
# This may be replaced when dependencies are built.
