file(REMOVE_RECURSE
  "CMakeFiles/fig4_heatmap.dir/fig4_heatmap.cpp.o"
  "CMakeFiles/fig4_heatmap.dir/fig4_heatmap.cpp.o.d"
  "fig4_heatmap"
  "fig4_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
