file(REMOVE_RECURSE
  "CMakeFiles/fig5_venues.dir/fig5_venues.cpp.o"
  "CMakeFiles/fig5_venues.dir/fig5_venues.cpp.o.d"
  "fig5_venues"
  "fig5_venues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_venues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
