# Empty dependencies file for fig5_venues.
# This may be replaced when dependencies are built.
