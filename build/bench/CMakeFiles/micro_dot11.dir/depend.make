# Empty dependencies file for micro_dot11.
# This may be replaced when dependencies are built.
