file(REMOVE_RECURSE
  "CMakeFiles/micro_dot11.dir/micro_dot11.cpp.o"
  "CMakeFiles/micro_dot11.dir/micro_dot11.cpp.o.d"
  "micro_dot11"
  "micro_dot11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dot11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
