# Empty dependencies file for table4_heatmap_ranking.
# This may be replaced when dependencies are built.
