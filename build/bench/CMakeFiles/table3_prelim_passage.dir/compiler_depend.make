# Empty compiler generated dependencies file for table3_prelim_passage.
# This may be replaced when dependencies are built.
