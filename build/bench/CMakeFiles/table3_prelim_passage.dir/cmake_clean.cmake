file(REMOVE_RECURSE
  "CMakeFiles/table3_prelim_passage.dir/table3_prelim_passage.cpp.o"
  "CMakeFiles/table3_prelim_passage.dir/table3_prelim_passage.cpp.o.d"
  "table3_prelim_passage"
  "table3_prelim_passage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prelim_passage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
