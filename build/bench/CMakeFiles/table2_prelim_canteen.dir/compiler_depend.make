# Empty compiler generated dependencies file for table2_prelim_canteen.
# This may be replaced when dependencies are built.
