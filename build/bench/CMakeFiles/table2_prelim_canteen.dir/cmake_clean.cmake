file(REMOVE_RECURSE
  "CMakeFiles/table2_prelim_canteen.dir/table2_prelim_canteen.cpp.o"
  "CMakeFiles/table2_prelim_canteen.dir/table2_prelim_canteen.cpp.o.d"
  "table2_prelim_canteen"
  "table2_prelim_canteen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_prelim_canteen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
