# Empty compiler generated dependencies file for ablation_mac_randomization.
# This may be replaced when dependencies are built.
