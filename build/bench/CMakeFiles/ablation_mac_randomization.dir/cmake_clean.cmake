file(REMOVE_RECURSE
  "CMakeFiles/ablation_mac_randomization.dir/ablation_mac_randomization.cpp.o"
  "CMakeFiles/ablation_mac_randomization.dir/ablation_mac_randomization.cpp.o.d"
  "ablation_mac_randomization"
  "ablation_mac_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mac_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
