# Empty compiler generated dependencies file for table1_karma_vs_mana.
# This may be replaced when dependencies are built.
