file(REMOVE_RECURSE
  "CMakeFiles/table1_karma_vs_mana.dir/table1_karma_vs_mana.cpp.o"
  "CMakeFiles/table1_karma_vs_mana.dir/table1_karma_vs_mana.cpp.o.d"
  "table1_karma_vs_mana"
  "table1_karma_vs_mana.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_karma_vs_mana.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
