# Empty dependencies file for ablation_adaptive_buffers.
# This may be replaced when dependencies are built.
