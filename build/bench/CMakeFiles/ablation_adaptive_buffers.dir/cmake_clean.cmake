file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_buffers.dir/ablation_adaptive_buffers.cpp.o"
  "CMakeFiles/ablation_adaptive_buffers.dir/ablation_adaptive_buffers.cpp.o.d"
  "ablation_adaptive_buffers"
  "ablation_adaptive_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
