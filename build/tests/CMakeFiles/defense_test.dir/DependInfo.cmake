
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/defense_test.cpp" "tests/CMakeFiles/defense_test.dir/defense_test.cpp.o" "gcc" "tests/CMakeFiles/defense_test.dir/defense_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/ch_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/ch_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ch_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/heatmap/CMakeFiles/ch_heatmap.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/ch_client.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/ch_world.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/ch_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/ch_dot11.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
