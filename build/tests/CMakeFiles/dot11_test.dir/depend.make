# Empty dependencies file for dot11_test.
# This may be replaced when dependencies are built.
