file(REMOVE_RECURSE
  "CMakeFiles/dot11_test.dir/dot11_test.cpp.o"
  "CMakeFiles/dot11_test.dir/dot11_test.cpp.o.d"
  "dot11_test"
  "dot11_test.pdb"
  "dot11_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot11_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
