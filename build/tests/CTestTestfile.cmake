# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/dot11_test[1]_include.cmake")
include("/root/repo/build/tests/pcap_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/medium_test[1]_include.cmake")
include("/root/repo/build/tests/world_test[1]_include.cmake")
include("/root/repo/build/tests/heatmap_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
