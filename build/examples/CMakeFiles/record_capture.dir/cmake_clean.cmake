file(REMOVE_RECURSE
  "CMakeFiles/record_capture.dir/record_capture.cpp.o"
  "CMakeFiles/record_capture.dir/record_capture.cpp.o.d"
  "record_capture"
  "record_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
