# Empty dependencies file for record_capture.
# This may be replaced when dependencies are built.
