file(REMOVE_RECURSE
  "CMakeFiles/build_your_own_attacker.dir/build_your_own_attacker.cpp.o"
  "CMakeFiles/build_your_own_attacker.dir/build_your_own_attacker.cpp.o.d"
  "build_your_own_attacker"
  "build_your_own_attacker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_your_own_attacker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
