# Empty compiler generated dependencies file for build_your_own_attacker.
# This may be replaced when dependencies are built.
