file(REMOVE_RECURSE
  "CMakeFiles/cityhunter_cli.dir/cityhunter_cli.cpp.o"
  "CMakeFiles/cityhunter_cli.dir/cityhunter_cli.cpp.o.d"
  "cityhunter_cli"
  "cityhunter_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cityhunter_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
