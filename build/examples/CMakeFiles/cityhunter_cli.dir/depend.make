# Empty dependencies file for cityhunter_cli.
# This may be replaced when dependencies are built.
