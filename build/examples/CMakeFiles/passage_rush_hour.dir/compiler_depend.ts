# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for passage_rush_hour.
