# Empty compiler generated dependencies file for passage_rush_hour.
# This may be replaced when dependencies are built.
