file(REMOVE_RECURSE
  "CMakeFiles/passage_rush_hour.dir/passage_rush_hour.cpp.o"
  "CMakeFiles/passage_rush_hour.dir/passage_rush_hour.cpp.o.d"
  "passage_rush_hour"
  "passage_rush_hour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passage_rush_hour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
