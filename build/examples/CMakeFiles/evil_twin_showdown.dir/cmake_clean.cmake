file(REMOVE_RECURSE
  "CMakeFiles/evil_twin_showdown.dir/evil_twin_showdown.cpp.o"
  "CMakeFiles/evil_twin_showdown.dir/evil_twin_showdown.cpp.o.d"
  "evil_twin_showdown"
  "evil_twin_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evil_twin_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
