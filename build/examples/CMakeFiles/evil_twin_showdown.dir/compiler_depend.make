# Empty compiler generated dependencies file for evil_twin_showdown.
# This may be replaced when dependencies are built.
