file(REMOVE_RECURSE
  "CMakeFiles/deauth_cafe.dir/deauth_cafe.cpp.o"
  "CMakeFiles/deauth_cafe.dir/deauth_cafe.cpp.o.d"
  "deauth_cafe"
  "deauth_cafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deauth_cafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
