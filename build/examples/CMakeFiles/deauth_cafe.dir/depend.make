# Empty dependencies file for deauth_cafe.
# This may be replaced when dependencies are built.
