
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/medium/event_queue.cpp" "src/medium/CMakeFiles/ch_medium.dir/event_queue.cpp.o" "gcc" "src/medium/CMakeFiles/ch_medium.dir/event_queue.cpp.o.d"
  "/root/repo/src/medium/medium.cpp" "src/medium/CMakeFiles/ch_medium.dir/medium.cpp.o" "gcc" "src/medium/CMakeFiles/ch_medium.dir/medium.cpp.o.d"
  "/root/repo/src/medium/propagation.cpp" "src/medium/CMakeFiles/ch_medium.dir/propagation.cpp.o" "gcc" "src/medium/CMakeFiles/ch_medium.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ch_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/ch_dot11.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
