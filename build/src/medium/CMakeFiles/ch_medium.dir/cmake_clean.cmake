file(REMOVE_RECURSE
  "CMakeFiles/ch_medium.dir/event_queue.cpp.o"
  "CMakeFiles/ch_medium.dir/event_queue.cpp.o.d"
  "CMakeFiles/ch_medium.dir/medium.cpp.o"
  "CMakeFiles/ch_medium.dir/medium.cpp.o.d"
  "CMakeFiles/ch_medium.dir/propagation.cpp.o"
  "CMakeFiles/ch_medium.dir/propagation.cpp.o.d"
  "libch_medium.a"
  "libch_medium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_medium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
