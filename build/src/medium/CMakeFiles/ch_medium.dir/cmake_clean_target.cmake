file(REMOVE_RECURSE
  "libch_medium.a"
)
