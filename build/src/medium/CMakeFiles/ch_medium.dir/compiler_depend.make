# Empty compiler generated dependencies file for ch_medium.
# This may be replaced when dependencies are built.
