
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dot11/crc32.cpp" "src/dot11/CMakeFiles/ch_dot11.dir/crc32.cpp.o" "gcc" "src/dot11/CMakeFiles/ch_dot11.dir/crc32.cpp.o.d"
  "/root/repo/src/dot11/frame.cpp" "src/dot11/CMakeFiles/ch_dot11.dir/frame.cpp.o" "gcc" "src/dot11/CMakeFiles/ch_dot11.dir/frame.cpp.o.d"
  "/root/repo/src/dot11/ie.cpp" "src/dot11/CMakeFiles/ch_dot11.dir/ie.cpp.o" "gcc" "src/dot11/CMakeFiles/ch_dot11.dir/ie.cpp.o.d"
  "/root/repo/src/dot11/mac_address.cpp" "src/dot11/CMakeFiles/ch_dot11.dir/mac_address.cpp.o" "gcc" "src/dot11/CMakeFiles/ch_dot11.dir/mac_address.cpp.o.d"
  "/root/repo/src/dot11/pcap.cpp" "src/dot11/CMakeFiles/ch_dot11.dir/pcap.cpp.o" "gcc" "src/dot11/CMakeFiles/ch_dot11.dir/pcap.cpp.o.d"
  "/root/repo/src/dot11/serialize.cpp" "src/dot11/CMakeFiles/ch_dot11.dir/serialize.cpp.o" "gcc" "src/dot11/CMakeFiles/ch_dot11.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ch_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
