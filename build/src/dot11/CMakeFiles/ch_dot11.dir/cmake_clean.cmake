file(REMOVE_RECURSE
  "CMakeFiles/ch_dot11.dir/crc32.cpp.o"
  "CMakeFiles/ch_dot11.dir/crc32.cpp.o.d"
  "CMakeFiles/ch_dot11.dir/frame.cpp.o"
  "CMakeFiles/ch_dot11.dir/frame.cpp.o.d"
  "CMakeFiles/ch_dot11.dir/ie.cpp.o"
  "CMakeFiles/ch_dot11.dir/ie.cpp.o.d"
  "CMakeFiles/ch_dot11.dir/mac_address.cpp.o"
  "CMakeFiles/ch_dot11.dir/mac_address.cpp.o.d"
  "CMakeFiles/ch_dot11.dir/pcap.cpp.o"
  "CMakeFiles/ch_dot11.dir/pcap.cpp.o.d"
  "CMakeFiles/ch_dot11.dir/serialize.cpp.o"
  "CMakeFiles/ch_dot11.dir/serialize.cpp.o.d"
  "libch_dot11.a"
  "libch_dot11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_dot11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
