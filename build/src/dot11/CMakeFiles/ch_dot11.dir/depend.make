# Empty dependencies file for ch_dot11.
# This may be replaced when dependencies are built.
