file(REMOVE_RECURSE
  "libch_dot11.a"
)
