file(REMOVE_RECURSE
  "CMakeFiles/ch_mobility.dir/population.cpp.o"
  "CMakeFiles/ch_mobility.dir/population.cpp.o.d"
  "CMakeFiles/ch_mobility.dir/venue.cpp.o"
  "CMakeFiles/ch_mobility.dir/venue.cpp.o.d"
  "libch_mobility.a"
  "libch_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
