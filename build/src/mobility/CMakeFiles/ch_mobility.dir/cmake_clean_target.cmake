file(REMOVE_RECURSE
  "libch_mobility.a"
)
