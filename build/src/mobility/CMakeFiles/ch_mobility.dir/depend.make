# Empty dependencies file for ch_mobility.
# This may be replaced when dependencies are built.
