# Empty dependencies file for ch_client.
# This may be replaced when dependencies are built.
