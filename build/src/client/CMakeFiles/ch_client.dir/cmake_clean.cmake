file(REMOVE_RECURSE
  "CMakeFiles/ch_client.dir/legit_ap.cpp.o"
  "CMakeFiles/ch_client.dir/legit_ap.cpp.o.d"
  "CMakeFiles/ch_client.dir/smartphone.cpp.o"
  "CMakeFiles/ch_client.dir/smartphone.cpp.o.d"
  "libch_client.a"
  "libch_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
