file(REMOVE_RECURSE
  "libch_client.a"
)
