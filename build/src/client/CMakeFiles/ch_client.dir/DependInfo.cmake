
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/legit_ap.cpp" "src/client/CMakeFiles/ch_client.dir/legit_ap.cpp.o" "gcc" "src/client/CMakeFiles/ch_client.dir/legit_ap.cpp.o.d"
  "/root/repo/src/client/smartphone.cpp" "src/client/CMakeFiles/ch_client.dir/smartphone.cpp.o" "gcc" "src/client/CMakeFiles/ch_client.dir/smartphone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ch_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/ch_dot11.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/ch_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/ch_world.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
