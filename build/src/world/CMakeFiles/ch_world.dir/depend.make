# Empty dependencies file for ch_world.
# This may be replaced when dependencies are built.
