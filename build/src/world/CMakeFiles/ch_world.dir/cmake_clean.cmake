file(REMOVE_RECURSE
  "CMakeFiles/ch_world.dir/ap_generator.cpp.o"
  "CMakeFiles/ch_world.dir/ap_generator.cpp.o.d"
  "CMakeFiles/ch_world.dir/city.cpp.o"
  "CMakeFiles/ch_world.dir/city.cpp.o.d"
  "CMakeFiles/ch_world.dir/photos.cpp.o"
  "CMakeFiles/ch_world.dir/photos.cpp.o.d"
  "CMakeFiles/ch_world.dir/pnl.cpp.o"
  "CMakeFiles/ch_world.dir/pnl.cpp.o.d"
  "CMakeFiles/ch_world.dir/wigle.cpp.o"
  "CMakeFiles/ch_world.dir/wigle.cpp.o.d"
  "libch_world.a"
  "libch_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
