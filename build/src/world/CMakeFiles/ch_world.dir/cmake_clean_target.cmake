file(REMOVE_RECURSE
  "libch_world.a"
)
