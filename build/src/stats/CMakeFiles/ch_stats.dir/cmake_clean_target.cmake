file(REMOVE_RECURSE
  "libch_stats.a"
)
