# Empty dependencies file for ch_stats.
# This may be replaced when dependencies are built.
