file(REMOVE_RECURSE
  "CMakeFiles/ch_stats.dir/campaign.cpp.o"
  "CMakeFiles/ch_stats.dir/campaign.cpp.o.d"
  "CMakeFiles/ch_stats.dir/report.cpp.o"
  "CMakeFiles/ch_stats.dir/report.cpp.o.d"
  "libch_stats.a"
  "libch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
