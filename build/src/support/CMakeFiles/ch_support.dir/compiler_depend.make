# Empty compiler generated dependencies file for ch_support.
# This may be replaced when dependencies are built.
