file(REMOVE_RECURSE
  "CMakeFiles/ch_support.dir/histogram.cpp.o"
  "CMakeFiles/ch_support.dir/histogram.cpp.o.d"
  "CMakeFiles/ch_support.dir/rng.cpp.o"
  "CMakeFiles/ch_support.dir/rng.cpp.o.d"
  "CMakeFiles/ch_support.dir/sim_time.cpp.o"
  "CMakeFiles/ch_support.dir/sim_time.cpp.o.d"
  "CMakeFiles/ch_support.dir/table.cpp.o"
  "CMakeFiles/ch_support.dir/table.cpp.o.d"
  "libch_support.a"
  "libch_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
