file(REMOVE_RECURSE
  "libch_support.a"
)
