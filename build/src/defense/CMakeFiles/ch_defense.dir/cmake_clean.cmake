file(REMOVE_RECURSE
  "CMakeFiles/ch_defense.dir/detector.cpp.o"
  "CMakeFiles/ch_defense.dir/detector.cpp.o.d"
  "libch_defense.a"
  "libch_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
