file(REMOVE_RECURSE
  "libch_defense.a"
)
