# Empty compiler generated dependencies file for ch_defense.
# This may be replaced when dependencies are built.
