# Empty dependencies file for ch_sim.
# This may be replaced when dependencies are built.
