file(REMOVE_RECURSE
  "CMakeFiles/ch_sim.dir/export.cpp.o"
  "CMakeFiles/ch_sim.dir/export.cpp.o.d"
  "CMakeFiles/ch_sim.dir/scenario.cpp.o"
  "CMakeFiles/ch_sim.dir/scenario.cpp.o.d"
  "libch_sim.a"
  "libch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
