file(REMOVE_RECURSE
  "libch_sim.a"
)
