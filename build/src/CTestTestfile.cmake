# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("dot11")
subdirs("cache")
subdirs("medium")
subdirs("world")
subdirs("heatmap")
subdirs("client")
subdirs("mobility")
subdirs("defense")
subdirs("core")
subdirs("stats")
subdirs("sim")
