# Empty dependencies file for ch_heatmap.
# This may be replaced when dependencies are built.
