file(REMOVE_RECURSE
  "libch_heatmap.a"
)
