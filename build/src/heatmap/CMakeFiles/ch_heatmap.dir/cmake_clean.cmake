file(REMOVE_RECURSE
  "CMakeFiles/ch_heatmap.dir/heatmap.cpp.o"
  "CMakeFiles/ch_heatmap.dir/heatmap.cpp.o.d"
  "libch_heatmap.a"
  "libch_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
