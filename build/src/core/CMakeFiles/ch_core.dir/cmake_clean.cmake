file(REMOVE_RECURSE
  "CMakeFiles/ch_core.dir/attacker.cpp.o"
  "CMakeFiles/ch_core.dir/attacker.cpp.o.d"
  "CMakeFiles/ch_core.dir/buffers.cpp.o"
  "CMakeFiles/ch_core.dir/buffers.cpp.o.d"
  "CMakeFiles/ch_core.dir/cityhunter.cpp.o"
  "CMakeFiles/ch_core.dir/cityhunter.cpp.o.d"
  "CMakeFiles/ch_core.dir/deauth.cpp.o"
  "CMakeFiles/ch_core.dir/deauth.cpp.o.d"
  "CMakeFiles/ch_core.dir/ssid_db.cpp.o"
  "CMakeFiles/ch_core.dir/ssid_db.cpp.o.d"
  "CMakeFiles/ch_core.dir/wigle_seed.cpp.o"
  "CMakeFiles/ch_core.dir/wigle_seed.cpp.o.d"
  "libch_core.a"
  "libch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
