
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attacker.cpp" "src/core/CMakeFiles/ch_core.dir/attacker.cpp.o" "gcc" "src/core/CMakeFiles/ch_core.dir/attacker.cpp.o.d"
  "/root/repo/src/core/buffers.cpp" "src/core/CMakeFiles/ch_core.dir/buffers.cpp.o" "gcc" "src/core/CMakeFiles/ch_core.dir/buffers.cpp.o.d"
  "/root/repo/src/core/cityhunter.cpp" "src/core/CMakeFiles/ch_core.dir/cityhunter.cpp.o" "gcc" "src/core/CMakeFiles/ch_core.dir/cityhunter.cpp.o.d"
  "/root/repo/src/core/deauth.cpp" "src/core/CMakeFiles/ch_core.dir/deauth.cpp.o" "gcc" "src/core/CMakeFiles/ch_core.dir/deauth.cpp.o.d"
  "/root/repo/src/core/ssid_db.cpp" "src/core/CMakeFiles/ch_core.dir/ssid_db.cpp.o" "gcc" "src/core/CMakeFiles/ch_core.dir/ssid_db.cpp.o.d"
  "/root/repo/src/core/wigle_seed.cpp" "src/core/CMakeFiles/ch_core.dir/wigle_seed.cpp.o" "gcc" "src/core/CMakeFiles/ch_core.dir/wigle_seed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ch_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dot11/CMakeFiles/ch_dot11.dir/DependInfo.cmake"
  "/root/repo/build/src/medium/CMakeFiles/ch_medium.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/ch_world.dir/DependInfo.cmake"
  "/root/repo/build/src/heatmap/CMakeFiles/ch_heatmap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
