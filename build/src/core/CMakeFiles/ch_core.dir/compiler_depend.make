# Empty compiler generated dependencies file for ch_core.
# This may be replaced when dependencies are built.
