file(REMOVE_RECURSE
  "libch_core.a"
)
